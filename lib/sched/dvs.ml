module Graph = Tats_taskgraph.Graph
module Task = Tats_taskgraph.Task
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library
module Comm = Tats_techlib.Comm
module Hotspot = Tats_thermal.Hotspot
module Stats = Tats_util.Stats

type level = { name : string; scale : float; power_factor : float }

let make_level ~name ~scale ~power_factor =
  if scale <= 0.0 || scale > 1.0 then invalid_arg "Dvs.make_level: scale not in (0,1]";
  if power_factor <= 0.0 || power_factor > 1.0 then
    invalid_arg "Dvs.make_level: power factor not in (0,1]";
  { name; scale; power_factor }

let cubic name scale = make_level ~name ~scale ~power_factor:(scale ** 3.0)

let default_levels =
  [ cubic "1.00V" 1.0; cubic "0.85V" 0.85; cubic "0.70V" 0.70; cubic "0.55V" 0.55 ]

type plan = {
  base : Schedule.t;
  levels : level array;
  finish : float array;
  makespan : float;
}

let base_wcet ~lib (s : Schedule.t) task =
  let tt = (Graph.task s.Schedule.graph task).Task.task_type in
  let kind = s.Schedule.pes.(s.Schedule.entries.(task).Schedule.pe).Pe.kind.Pe.kind_id in
  Library.wcet lib ~task_type:tt ~kind

(* The latest moment [task] may finish without perturbing anything that was
   scheduled after it: data successors (minus bus delay) and the next task
   on the same PE all keep their original start times. *)
let latest_finish ~lib (s : Schedule.t) task =
  let comm = Library.comm lib in
  let entry = s.Schedule.entries.(task) in
  let deadline = Graph.deadline s.Schedule.graph in
  let from_successors =
    List.fold_left
      (fun acc (succ, data) ->
        let se = s.Schedule.entries.(succ) in
        let delay = Comm.delay_between comm ~src:entry.Schedule.pe ~dst:se.Schedule.pe ~data in
        Float.min acc (se.Schedule.start -. delay))
      deadline
      (Graph.succs s.Schedule.graph task)
  in
  let from_pe_order =
    List.fold_left
      (fun acc (e : Schedule.entry) ->
        if e.Schedule.start >= entry.Schedule.finish -. 1e-9 && e.Schedule.task <> task
        then Float.min acc e.Schedule.start
        else acc)
      infinity
      (Schedule.tasks_on_pe s entry.Schedule.pe)
  in
  Float.min from_successors from_pe_order

let reclaim ?(levels = default_levels) ~lib (s : Schedule.t) =
  if levels = [] then invalid_arg "Dvs.reclaim: no levels";
  Tats_util.Trace.with_span "dvs.reclaim"
    ~args:[ ("tasks", Tats_util.Trace.Int (Graph.n_tasks s.Schedule.graph)) ]
  @@ fun () ->
  let sorted = List.sort (fun a b -> compare b.scale a.scale) levels in
  let fastest = List.hd sorted in
  if fastest.scale < 1.0 -. 1e-9 then
    invalid_arg "Dvs.reclaim: the level ladder must include full speed";
  let n = Graph.n_tasks s.Schedule.graph in
  let chosen = Array.make n fastest in
  let finish = Array.map (fun (e : Schedule.entry) -> e.Schedule.finish) s.Schedule.entries in
  for task = 0 to n - 1 do
    let entry = s.Schedule.entries.(task) in
    let wcet = base_wcet ~lib s task in
    let budget = latest_finish ~lib s task -. entry.Schedule.start in
    (* Slowest level whose stretched WCET still fits the budget. *)
    let best =
      List.fold_left
        (fun acc level ->
          if wcet /. level.scale <= budget +. 1e-9 then
            match acc with
            | Some l when l.scale <= level.scale -> acc
            | Some _ | None -> Some level
          else acc)
        None sorted
    in
    let level = match best with Some l -> l | None -> fastest in
    chosen.(task) <- level;
    finish.(task) <- entry.Schedule.start +. (wcet /. level.scale)
  done;
  let makespan = Array.fold_left Float.max 0.0 finish in
  { base = s; levels = chosen; finish; makespan }

let task_energy plan task =
  let level = plan.levels.(task) in
  let base = plan.base.Schedule.entries.(task).Schedule.energy in
  base *. level.power_factor /. level.scale

let total_energy plan =
  let n = Array.length plan.levels in
  let acc = ref 0.0 in
  for task = 0 to n - 1 do
    acc := !acc +. task_energy plan task
  done;
  !acc

let energy_saving_ratio plan =
  let original = Metrics.total_task_energy plan.base in
  if original <= 0.0 then 0.0 else 1.0 -. (total_energy plan /. original)

let pe_average_powers plan =
  let s = plan.base in
  let horizon = Float.max plan.makespan 1e-9 in
  let energy = Array.make (Schedule.n_pes s) 0.0 in
  Array.iteri
    (fun task (e : Schedule.entry) ->
      energy.(e.Schedule.pe) <- energy.(e.Schedule.pe) +. task_energy plan task)
    s.Schedule.entries;
  Array.mapi
    (fun pe e -> (e /. horizon) +. s.Schedule.pes.(pe).Pe.kind.Pe.idle_power)
    energy

let thermal_report ?(leakage = true) plan ~hotspot =
  let s = plan.base in
  if Hotspot.n_blocks hotspot <> Schedule.n_pes s then
    invalid_arg "Dvs.thermal_report: hotspot must have one block per PE";
  let horizon = Float.max plan.makespan 1e-9 in
  let dynamic = Array.make (Schedule.n_pes s) 0.0 in
  Array.iteri
    (fun task (e : Schedule.entry) ->
      dynamic.(e.Schedule.pe) <-
        dynamic.(e.Schedule.pe) +. (task_energy plan task /. horizon))
    s.Schedule.entries;
  let idle =
    Array.map (fun (i : Pe.inst) -> i.Pe.kind.Pe.idle_power) s.Schedule.pes
  in
  let block_temps =
    if leakage then Hotspot.inquire_with_leakage hotspot ~dynamic ~idle
    else Hotspot.query hotspot ~power:(Array.mapi (fun i d -> d +. idle.(i)) dynamic)
  in
  {
    Metrics.pe_powers = Array.mapi (fun i d -> d +. idle.(i)) dynamic;
    block_temps;
    max_temp = Stats.max block_temps;
    avg_temp = Stats.mean block_temps;
  }

type violation =
  | Deadline_exceeded of float
  | Precedence_broken of Graph.edge
  | Pe_order_broken of int * Task.id * Task.id

let validate plan ~lib =
  let s = plan.base in
  let comm = Library.comm lib in
  let violations = ref [] in
  (* Only a miss the plan *introduces* is its fault: a base schedule that
     already overran its deadline is inherited, not caused. *)
  let limit = Float.max (Graph.deadline s.Schedule.graph) s.Schedule.makespan in
  if plan.makespan > limit +. 1e-6 then
    violations := Deadline_exceeded plan.makespan :: !violations;
  List.iter
    (fun ({ Graph.src; dst; data } as edge) ->
      let pe_src = s.Schedule.entries.(src).Schedule.pe in
      let dst_entry = s.Schedule.entries.(dst) in
      let delay = Comm.delay_between comm ~src:pe_src ~dst:dst_entry.Schedule.pe ~data in
      if dst_entry.Schedule.start +. 1e-6 < plan.finish.(src) +. delay then
        violations := Precedence_broken edge :: !violations)
    (Graph.edges s.Schedule.graph);
  for pe = 0 to Schedule.n_pes s - 1 do
    let rec scan = function
      | (a : Schedule.entry) :: (b :: _ as rest) ->
          if b.Schedule.start +. 1e-6 < plan.finish.(a.Schedule.task) then
            violations := Pe_order_broken (pe, a.Schedule.task, b.Schedule.task) :: !violations;
          scan rest
      | [ _ ] | [] -> ()
    in
    scan (Schedule.tasks_on_pe s pe)
  done;
  List.rev !violations
