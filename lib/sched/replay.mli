(** Schedule → power-trace adapter for the event-driven transient engine.

    A schedule is a set of per-PE busy intervals, so its power draw is
    piecewise constant with breakpoints exactly at task starts and
    finishes. This module turns schedules (and any other interval shape,
    e.g. {!Periodic} hyperperiod entries) into
    {!Tats_thermal.Transient.profile} values with {e exact} breakpoints —
    no sampling grid — and replays them for peak transient temperatures. *)

module Library = Tats_techlib.Library
module Hotspot = Tats_thermal.Hotspot
module Transient = Tats_thermal.Transient

type interval = { pe : int; start : float; finish : float; power : float }
(** One busy interval in schedule time units: [pe] draws [power] extra
    watts (on top of its idle floor) over [[start, finish)]. *)

val profile_of_intervals :
  duration:float ->
  time_unit:float ->
  idle:float array ->
  interval list ->
  Transient.profile
(** Build one period of a piecewise-constant profile: [duration] in
    schedule time units, scaled by [time_unit] seconds per unit; each PE
    contributes its idle floor everywhere plus the power of whichever
    intervals cover the segment. Breakpoints are the interval endpoints in
    [[0, duration)]. Raises [Invalid_argument] on a non-positive duration
    or time unit, or an interval referencing an unknown PE. *)

val of_schedule :
  ?time_unit:float -> lib:Library.t -> Schedule.t -> Transient.profile
(** The schedule's power trace over one makespan: each entry contributes
    its task's WCPC on its PE while it runs. [time_unit] (default 1e-3)
    maps one schedule time unit to seconds. Segment powers agree exactly
    with {!Metrics.power_profile} sampled inside the segment. *)

val peaks :
  ?periods:int ->
  ?dt:float ->
  ?exact:bool ->
  hotspot:Hotspot.t ->
  Transient.profile ->
  float array
(** Replay [periods] (default 50) repetitions of the profile from ambient
    through the engine and return the per-block peak temperature over the
    last period (after warm-up). [dt] defaults to one hundredth of the
    profile duration; [exact] (default false) selects the bit-exact
    factored-solve path over the propagator fast path. The hotspot must
    have one block per profile input. *)
