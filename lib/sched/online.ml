module Graph = Tats_taskgraph.Graph
module Task = Tats_taskgraph.Task
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library
module Comm = Tats_techlib.Comm
module Hotspot = Tats_thermal.Hotspot
module Inquiry = Tats_thermal.Inquiry
module Transient = Tats_thermal.Transient
module Rng = Tats_util.Rng
module Trace = Tats_util.Trace
module Metricsreg = Tats_util.Metricsreg

let m_events = Metricsreg.counter "online.events"
let m_decisions = Metricsreg.counter "online.decisions"
let m_candidates = Metricsreg.counter "online.candidates"
let m_deferrals = Metricsreg.counter "online.deferrals"

exception Policy_needs_hotspot

(* {1 Arrival streams} *)

type arrivals = float array

let validate_arrivals graph arrivals =
  if Array.length arrivals <> Graph.n_tasks graph then
    invalid_arg "Online: arrivals must cover every task";
  Array.iteri
    (fun t r ->
      if not (Float.is_finite r) || r < 0.0 then
        invalid_arg
          (Printf.sprintf "Online: task %d has an invalid release time" t))
    arrivals

let zero graph = Array.make (Graph.n_tasks graph) 0.0

let sporadic ?(mean_gap = 25.0) ~seed graph =
  if mean_gap <= 0.0 then
    invalid_arg "Online.sporadic: mean_gap must be positive";
  let n = Graph.n_tasks graph in
  let rel = Array.make n 0.0 in
  (* Topological sweep: a task's release is a per-task random gap after the
     latest predecessor release, so the stream respects causality while each
     gap depends only on (seed, task) — not on evaluation order. *)
  Array.iter
    (fun v ->
      let rng = Rng.derive seed v in
      let gap = Rng.float rng (2.0 *. mean_gap) in
      let base =
        List.fold_left
          (fun acc (p, _) -> Float.max acc rel.(p))
          0.0 (Graph.preds graph v)
      in
      rel.(v) <- base +. gap)
    (Graph.topological_order graph);
  rel

let of_trace (s : Schedule.t) =
  Array.map (fun (e : Schedule.entry) -> e.Schedule.start) s.Schedule.entries

(* {1 Policies} *)

type reactive = {
  base : Policy.t;
  trigger : float;
  penalty : float;
  cooldown : float;
  max_defers : int;
}

type policy = Mirror of Policy.t | Reactive of reactive

let default_reactive =
  {
    base = Policy.Thermal_aware;
    trigger = 75.0;
    penalty = 4.0;
    cooldown = 40.0;
    max_defers = 8;
  }

let policy_name = function
  | Mirror p -> Policy.name p
  | Reactive _ -> "reactive"

let policy_of_name = function
  | "reactive" -> Some (Reactive default_reactive)
  | name -> Option.map (fun p -> Mirror p) (Policy.of_name name)

let pp_policy ppf = function
  | Mirror p -> Format.fprintf ppf "online(%a)" Policy.pp p
  | Reactive r ->
      Format.fprintf ppf
        "reactive(%a, trigger %.1f°C, penalty %.2f, cooldown %.1f, <=%d \
         defers)"
        Policy.pp r.base r.trigger r.penalty r.cooldown r.max_defers

let base_policy = function Mirror p -> p | Reactive r -> r.base

(* {1 The event-loop core} *)

type stats = {
  events : int;
  decisions : int;
  candidates : int;
  deferrals : int;
  peak_observed : float;
}

type run = {
  schedule : Schedule.t;
  arrivals : arrivals;
  policy : policy;
  stats : stats;
}

module Iset = Set.Make (Int)
module Fset = Set.Make (Float)

type state = {
  entries : Schedule.entry option array;
  pe_tasks : Schedule.entry list array;
  pe_energy : float array;
  mutable n_scheduled : int;
}

(* Identical arithmetic to List_sched.earliest_start with no exclusive
   pairs: data from every predecessor must have arrived, and the PE must
   be free. *)
let earliest_start st ~comm graph task pe =
  let ready =
    List.fold_left
      (fun acc (pred, data) ->
        match st.entries.(pred) with
        | None -> assert false (* only called on plannable tasks *)
        | Some e ->
            let delay = Comm.delay_between comm ~src:e.Schedule.pe ~dst:pe ~data in
            Float.max acc (e.Schedule.finish +. delay))
      0.0 (Graph.preds graph task)
  in
  let avail =
    List.fold_left
      (fun acc (e : Schedule.entry) -> Float.max acc e.Schedule.finish)
      0.0 st.pe_tasks.(pe)
  in
  Float.max ready avail

(* Live transient state: the engine is advanced lazily from [clock] to the
   current event time over the piecewise-constant power implied by the
   committed intervals (idle + WCPC of whatever runs in each segment). *)
type live = {
  engine : Transient.t;
  temps : float array; (* full node vector, blocks first *)
  mutable clock : float; (* schedule time units *)
}

let advance_live l ~idle ~time_unit ~intervals ~now =
  if now > l.clock then begin
    let n_pes = Array.length idle in
    let power_at t =
      Array.init n_pes (fun pe ->
          let running =
            List.fold_left
              (fun acc (iv : Replay.interval) ->
                if iv.Replay.pe = pe && iv.Replay.start <= t && t < iv.Replay.finish
                then acc +. iv.Replay.power
                else acc)
              0.0 intervals
          in
          idle.(pe) +. running)
    in
    (* Segment boundaries: committed interval endpoints strictly inside
       (clock, now). No endpoint lies inside a segment, so power is exact
       when evaluated at the segment start. *)
    let cuts =
      List.concat_map
        (fun (iv : Replay.interval) -> [ iv.Replay.start; iv.Replay.finish ])
        intervals
      |> List.filter (fun t -> t > l.clock && t < now)
      |> List.sort_uniq Float.compare
    in
    let rec step_segments start = function
      | [] ->
          if now > start then
            Transient.step l.engine
              ~dt:((now -. start) *. time_unit)
              ~power:(power_at start) l.temps
      | cut :: rest ->
          if cut > start then
            Transient.step l.engine
              ~dt:((cut -. start) *. time_unit)
              ~power:(power_at start) l.temps;
          step_segments cut rest
    in
    step_segments l.clock cuts;
    l.clock <- now
  end

(* The shared greedy core. [release] is when the scheduler learns a task
   exists (all zeros for the clairvoyant baseline); [floor] is the earliest
   permitted start (the arrival trace for both players). With both all
   zero this runs the exact candidate scan, DC arithmetic and tie-breaking
   of List_sched.run — the bit-identity anchor of the test battery. *)
let plan ?weights ?hotspot ?constraints ~time_unit ~release ~floor ~graph ~lib
    ~pes ~policy () =
  let n = Graph.n_tasks graph in
  validate_arrivals graph release;
  validate_arrivals graph floor;
  let checker =
    match constraints with
    | Some spec when not (Constraints.is_empty spec) ->
        Some (Constraints.make spec ~n_tasks:n ~pes)
    | _ -> None
  in
  let admissible task pe =
    match checker with
    | None -> true
    | Some c -> Constraints.admissible c ~task ~pe ~pes
  in
  let weights =
    match weights with
    | Some w -> w
    | None -> Policy.default_weights ~deadline:(Graph.deadline graph)
  in
  let reactive = match policy with Mirror _ -> None | Reactive r -> Some r in
  (match (policy, hotspot) with
  | (Mirror Policy.Thermal_aware | Reactive _), None ->
      raise Policy_needs_hotspot
  | (Mirror Policy.Thermal_aware | Reactive _), Some h ->
      if Hotspot.n_blocks h <> Array.length pes then
        invalid_arg "Online: hotspot must have one block per PE"
  | Mirror (Policy.Baseline | Policy.Power_aware _), _ -> ());
  let comm = Library.comm lib in
  let sc = Dc.static_criticality lib graph in
  let idle = Array.map (fun (i : Pe.inst) -> i.Pe.kind.Pe.idle_power) pes in
  let inquiry =
    match (base_policy policy, hotspot) with
    | Policy.Thermal_aware, Some h -> Some (Hotspot.inquiry h)
    | _ -> None
  in
  let live =
    match (reactive, hotspot) with
    | Some _, Some h ->
        let model = Hotspot.model h in
        Some
          {
            engine = Transient.create (Transient.of_model model);
            temps = Transient.initial_ambient model;
            clock = 0.0;
          }
    | _ -> None
  in
  let st =
    {
      entries = Array.make n None;
      pe_tasks = Array.make (Array.length pes) [];
      pe_energy = Array.make (Array.length pes) 0.0;
      n_scheduled = 0;
    }
  in
  let unscheduled_preds = Array.make n 0 in
  for v = 0 to n - 1 do
    unscheduled_preds.(v) <- List.length (Graph.preds graph v)
  done;
  let released = Array.make n false in
  let wake = Array.make n 0.0 in
  let defers = Array.make n 0 in
  let committed = ref [] (* Replay.interval list, for the live state *) in
  let events =
    ref (Array.fold_left (fun s r -> Fset.add r s) Fset.empty release)
  in
  let n_events = ref 0 in
  let n_candidates = ref 0 in
  let n_deferrals = ref 0 in
  let peak_observed = ref Float.nan in
  while st.n_scheduled < n do
    let now =
      match Fset.min_elt_opt !events with
      | Some t -> t
      | None -> assert false (* every unscheduled task has a pending event *)
    in
    events := Fset.remove now !events;
    incr n_events;
    Metricsreg.incr m_events;
    Trace.with_span "online.event" ~args:[ ("t", Trace.Float now) ]
    @@ fun () ->
    Array.iteri
      (fun t r -> if (not released.(t)) && r <= now then released.(t) <- true)
      release;
    (* Query the transient engine for the temperature state at this
       decision point (reactive policies only). *)
    let temps_now =
      match live with
      | None -> None
      | Some l ->
          advance_live l ~idle ~time_unit ~intervals:!committed ~now;
          let hottest = ref Float.neg_infinity in
          for pe = 0 to Array.length pes - 1 do
            hottest := Float.max !hottest l.temps.(pe)
          done;
          peak_observed :=
            (if Float.is_nan !peak_observed then !hottest
             else Float.max !peak_observed !hottest);
          Some l.temps
    in
    let all_hot =
      match (temps_now, reactive) with
      | Some temps, Some r ->
          let hot = ref true in
          for pe = 0 to Array.length pes - 1 do
            if temps.(pe) <= r.trigger then hot := false
          done;
          !hot
      | _ -> false
    in
    (* Everything plannable right now: released, predecessors committed,
       and past any cooldown stall. *)
    let ready = ref Iset.empty in
    for v = 0 to n - 1 do
      if
        st.entries.(v) = None
        && released.(v)
        && unscheduled_preds.(v) = 0
        && wake.(v) <= now
      then ready := Iset.add v !ready
    done;
    while not (Iset.is_empty !ready) do
      n_candidates := !n_candidates + (Iset.cardinal !ready * Array.length pes);
      Metricsreg.add m_candidates (Iset.cardinal !ready * Array.length pes);
      (* One base solve per commit step, exactly as the offline loop:
         candidates are delta-evaluated against the committed PE
         energies. *)
      let base =
        match inquiry with
        | None -> None
        | Some e -> Some (Inquiry.base_response e ~power:st.pe_energy)
      in
      let best = ref None in
      Iset.iter
        (fun task ->
          let tt = (Graph.task graph task).Task.task_type in
          Array.iteri
            (fun pe (inst : Pe.inst) ->
              if admissible task pe then begin
              let kind = inst.Pe.kind.Pe.kind_id in
              let wcet = Library.wcet lib ~task_type:tt ~kind in
              let task_energy = Library.energy lib ~task_type:tt ~kind in
              let start =
                Float.max
                  (earliest_start st ~comm graph task pe)
                  (Float.max floor.(task) now)
              in
              let finish = start +. wcet in
              let cost =
                match base_policy policy with
                | Policy.Baseline -> 0.0
                | Policy.Power_aware Policy.Min_task_power ->
                    Dc.cost_task_power lib ~task_type:tt ~kind
                | Policy.Power_aware Policy.Min_pe_average_power ->
                    Dc.cost_pe_average_power lib ~pe_energy:st.pe_energy.(pe)
                      ~task_energy ~finish
                | Policy.Power_aware Policy.Min_task_energy ->
                    Dc.cost_task_energy lib ~task_type:tt ~kind
                | Policy.Thermal_aware ->
                    let engine = Option.get inquiry in
                    let base = Option.get base in
                    let task_power = Library.wcpc lib ~task_type:tt ~kind in
                    Dc.cost_thermal ~engine ~base ~idle ~finish ~pe ~task_power
              in
              (* Migration pressure: candidates on currently-hot PEs pay an
                 extra normalized cost per °C over the trigger. *)
              let cost =
                match (temps_now, reactive) with
                | Some temps, Some r ->
                    cost
                    +. r.penalty
                       *. Float.max 0.0 (temps.(pe) -. r.trigger)
                       /. 100.0
                | _ -> cost
              in
              let dc =
                Dc.value ~sc:sc.(task) ~wcet ~start ~cost
                  ~weight:weights.Policy.cost_weight
              in
              let better =
                match !best with
                | None -> true
                | Some (dc', task', pe', _, _, _) ->
                    dc > dc' +. 1e-12
                    || (Float.abs (dc -. dc') <= 1e-12
                       && (task < task' || (task = task' && pe < pe')))
              in
              if better then best := Some (dc, task, pe, start, finish, task_energy)
              end)
            pes)
        !ready;
      match !best with
      | None -> (
          match checker with
          | Some _ ->
              raise
                (Constraints.Infeasible (Constraints.infeasible_msg "Online.plan"))
          | None -> assert false)
      | Some (_, task, pe, start, finish, task_energy) -> (
          match reactive with
          | Some r when all_hot && defers.(task) < r.max_defers ->
              (* Throttle: every PE is over the trigger, so stall the pick
                 to a cooldown wake-up instead of committing it. *)
              defers.(task) <- defers.(task) + 1;
              wake.(task) <- now +. r.cooldown;
              events := Fset.add (now +. r.cooldown) !events;
              ready := Iset.remove task !ready;
              incr n_deferrals;
              Metricsreg.incr m_deferrals
          | _ ->
              (match checker with
              | Some c -> Constraints.commit c ~task ~pe
              | None -> ());
              let entry =
                { Schedule.task; pe; start; finish; energy = task_energy }
              in
              st.entries.(task) <- Some entry;
              st.pe_tasks.(pe) <- entry :: st.pe_tasks.(pe);
              st.pe_energy.(pe) <- st.pe_energy.(pe) +. task_energy;
              st.n_scheduled <- st.n_scheduled + 1;
              Metricsreg.incr m_decisions;
              (if live <> None then
                 let tt = (Graph.task graph task).Task.task_type in
                 let kind = pes.(pe).Pe.kind.Pe.kind_id in
                 let power = Library.wcpc lib ~task_type:tt ~kind in
                 committed :=
                   { Replay.pe; start; finish; power } :: !committed);
              ready := Iset.remove task !ready;
              List.iter
                (fun (succ, _) ->
                  unscheduled_preds.(succ) <- unscheduled_preds.(succ) - 1;
                  if
                    unscheduled_preds.(succ) = 0
                    && released.(succ)
                    && wake.(succ) <= now
                  then ready := Iset.add succ !ready)
                (Graph.succs graph task))
    done
  done;
  let entries =
    Array.mapi
      (fun i e ->
        match e with
        | Some e -> e
        | None ->
            failwith
              (Printf.sprintf
                 "Online: internal error: task %d was never scheduled" i))
      st.entries
  in
  let schedule = Schedule.make ~graph ~pes ~entries in
  let stats =
    {
      events = !n_events;
      decisions = st.n_scheduled;
      candidates = !n_candidates;
      deferrals = !n_deferrals;
      peak_observed = !peak_observed;
    }
  in
  (schedule, stats)

let run ?weights ?hotspot ?constraints ?(time_unit = 1e-3) ~arrivals ~graph
    ~lib ~pes ~policy () =
  Trace.with_span "online.run"
    ~args:
      [
        ("policy", Trace.Str (Format.asprintf "%a" pp_policy policy));
        ("tasks", Trace.Int (Graph.n_tasks graph));
        ("pes", Trace.Int (Array.length pes));
      ]
  @@ fun () ->
  let schedule, stats =
    plan ?weights ?hotspot ?constraints ~time_unit ~release:arrivals
      ~floor:arrivals ~graph ~lib ~pes ~policy ()
  in
  { schedule; arrivals; policy; stats }

let clairvoyant ?weights ?hotspot ?constraints ~arrivals ~graph ~lib ~pes
    ~policy () =
  Trace.with_span "online.clairvoyant"
    ~args:[ ("policy", Trace.Str (Policy.name policy)) ]
  @@ fun () ->
  let release = Array.make (Graph.n_tasks graph) 0.0 in
  validate_arrivals graph arrivals;
  let schedule, _ =
    plan ?weights ?hotspot ?constraints ~time_unit:1e-3 ~release
      ~floor:arrivals ~graph ~lib ~pes ~policy:(Mirror policy) ()
  in
  schedule

let released_before_start r =
  Array.to_list r.schedule.Schedule.entries
  |> List.filter_map (fun (e : Schedule.entry) ->
         if e.Schedule.start < r.arrivals.(e.Schedule.task) then
           Some e.Schedule.task
         else None)

(* {1 Competitive scoring} *)

type score = {
  online_makespan : float;
  clairvoyant_makespan : float;
  makespan_ratio : float;
  online_peak : float;
  clairvoyant_peak : float;
  peak_ratio : float;
  mimicked_makespan : bool;
  mimicked_peak : bool;
}

let score ?(periods = 50) ?dt ?(time_unit = 1e-3) ~lib ~hotspot ~clairvoyant
    (r : run) =
  Trace.with_span "online.score" @@ fun () ->
  let peak_of s =
    let profile = Replay.of_schedule ~time_unit ~lib s in
    Array.fold_left Float.max Float.neg_infinity
      (Replay.peaks ~periods ?dt ~hotspot profile)
  in
  let online_makespan = r.schedule.Schedule.makespan in
  let clairvoyant_makespan = clairvoyant.Schedule.makespan in
  let online_peak = peak_of r.schedule in
  let clairvoyant_peak = peak_of clairvoyant in
  (* The adversary sees everything the online player does and may mimic
     it, so the baseline per metric is the better of the two schedules —
     both ratios are >= 1 by construction. *)
  let ratio online clairvoyant =
    let baseline = Float.min online clairvoyant in
    let mimicked = online < clairvoyant in
    if baseline <= 0.0 then (1.0, mimicked) else (online /. baseline, mimicked)
  in
  let makespan_ratio, mimicked_makespan =
    ratio online_makespan clairvoyant_makespan
  in
  let peak_ratio, mimicked_peak = ratio online_peak clairvoyant_peak in
  {
    online_makespan;
    clairvoyant_makespan;
    makespan_ratio;
    online_peak;
    clairvoyant_peak;
    peak_ratio;
    mimicked_makespan;
    mimicked_peak;
  }

let pp_score ppf s =
  Format.fprintf ppf
    "@[<v>makespan %.1f vs clairvoyant %.1f (ratio %.4f%s)@,\
     peak %.2f°C vs clairvoyant %.2f°C (ratio %.4f%s)@]" s.online_makespan
    s.clairvoyant_makespan s.makespan_ratio
    (if s.mimicked_makespan then ", mimicked" else "")
    s.online_peak s.clairvoyant_peak s.peak_ratio
    (if s.mimicked_peak then ", mimicked" else "")
