(** Dynamic criticality: the selection score of the list scheduler.

    All cost terms are normalized into [~0, ~1] before being scaled by
    [Policy.weights.cost_weight], so that one weight is meaningful across
    power (W), energy (J) and temperature (°C) costs. *)

module Task = Tats_taskgraph.Task
module Graph = Tats_taskgraph.Graph
module Library = Tats_techlib.Library

val static_criticality : Library.t -> Graph.t -> float array
(** SC per task: longest path to a sink, with node weight = the task's
    average WCET over all kinds and edge weight = the average of the free
    (same-PE) and bus (cross-PE) communication delays. *)

(** Normalized cost terms (dimensionless, roughly in [0, 1]): *)

val cost_task_power : Library.t -> task_type:int -> kind:int -> float
(** Heuristic 1: WCPC / library max WCPC. *)

val cost_pe_average_power :
  Library.t -> pe_energy:float -> task_energy:float -> finish:float -> float
(** Heuristic 2: the PE's cumulative average power after accepting the task,
    normalized by the library max WCPC. *)

val cost_task_energy : Library.t -> task_type:int -> kind:int -> float
(** Heuristic 3: task energy / library max energy. *)

val cost_temperature : ambient:float -> avg_temp:float -> float
(** Thermal: (HotSpot average temperature - ambient) / 100 °C. *)

val cost_thermal :
  engine:Tats_thermal.Inquiry.t ->
  base:Tats_thermal.Inquiry.base ->
  idle:float array ->
  finish:float ->
  pe:int ->
  task_power:float ->
  float
(** The thermal-aware candidate cost, end to end: issue the paper's HotSpot
    inquiry through the {!Tats_thermal.Inquiry} engine — the per-step
    [base] (cumulated PE energies) averaged over the candidate's finish
    horizon, plus [task_power] on the candidate [pe], delta-evaluated —
    and fold the average temperature through {!cost_temperature}. *)

val value :
  sc:float -> wcet:float -> start:float -> cost:float -> weight:float -> float
(** [DC = sc - wcet - start - weight * cost]. [start] is
    [max(PE available, task ready)]. *)
