(* Safety-criticality placement constraints for the schedulers: pinned
   tasks (task -> PE or task -> kind affinity) and isolation groups
   (criticality classes that may never share a PE).

   The spec is a plain immutable value; each scheduler run builds its own
   stateful [checker] from it, so a spec can be reused across the
   bisection attempts of [List_sched.run_adaptive] or across campaign
   cells without aliasing.

   Soundness of the greedy schedulers' "empty candidate scan => give up"
   rule rests on the claim invariant maintained here: with U = unclaimed
   PEs and K = isolation classes that own no PE yet, U >= K always holds.
   A class that already owns a PE may claim a fresh one only while U > K,
   so the unplaced classes can never be starved of PEs by earlier greedy
   choices; admissibility is monotone between commits, hence an empty
   admissible scan means the instance is genuinely infeasible (for the
   committed prefix), not an artifact of commit order. *)

module Task = Tats_taskgraph.Task
module Pe = Tats_techlib.Pe

type pin = To_pe of int | To_kind of int

type spec = { pins : (Task.id * pin) list; isolation : (Task.id * int) list }

let empty = { pins = []; isolation = [] }
let is_empty s = s.pins = [] && s.isolation = []

exception Invalid of string
exception Infeasible of string

let invalid fmt = Printf.ksprintf (fun m -> raise (Invalid m)) fmt

type checker = {
  pin_of : pin option array;  (* by task *)
  class_of : int option array;  (* by task *)
  pe_class : int option array;  (* by PE: owning class, if claimed *)
  placed : (int, unit) Hashtbl.t;  (* classes owning >= 1 PE *)
  n_classes : int;
  mutable unclaimed : int;  (* U *)
  mutable unplaced : int;  (* K *)
}

let pin_allows (pes : Pe.inst array) pin pe =
  match pin with
  | To_pe p -> pe = p
  | To_kind k -> pes.(pe).Pe.kind.Pe.kind_id = k

let make spec ~n_tasks ~(pes : Pe.inst array) =
  let n_pes = Array.length pes in
  let kind_present k =
    Array.exists (fun i -> i.Pe.kind.Pe.kind_id = k) pes
  in
  let pin_of = Array.make n_tasks None in
  List.iter
    (fun (task, pin) ->
      if task < 0 || task >= n_tasks then
        invalid "constraints: pinned task %d out of range" task;
      (match pin with
      | To_pe p ->
          if p < 0 || p >= n_pes then
            invalid "constraints: task %d pinned to PE %d out of range" task p
      | To_kind k ->
          if not (kind_present k) then
            invalid "constraints: task %d pinned to kind %d absent from the platform"
              task k);
      match pin_of.(task) with
      | Some _ -> invalid "constraints: task %d pinned twice" task
      | None -> pin_of.(task) <- Some pin)
    spec.pins;
  let class_of = Array.make n_tasks None in
  List.iter
    (fun (task, cls) ->
      if task < 0 || task >= n_tasks then
        invalid "constraints: isolated task %d out of range" task;
      if cls < 0 then invalid "constraints: task %d has negative class %d" task cls;
      match class_of.(task) with
      | Some _ -> invalid "constraints: task %d isolated twice" task
      | None -> class_of.(task) <- Some cls)
    spec.isolation;
  let classes = Hashtbl.create 8 in
  Array.iter
    (function Some c -> Hashtbl.replace classes c () | None -> ())
    class_of;
  let n_classes = Hashtbl.length classes in
  if n_classes > n_pes then
    invalid "constraints: %d isolation classes but only %d PEs" n_classes n_pes;
  let t =
    {
      pin_of;
      class_of;
      pe_class = Array.make n_pes None;
      placed = Hashtbl.create 8;
      n_classes;
      unclaimed = n_pes;
      unplaced = n_classes;
    }
  in
  (* Pre-claim the PE pins of classed tasks: the pinned PE belongs to that
     class from the start, so no other class can grab it first at runtime. *)
  Array.iteri
    (fun task pin ->
      match (pin, t.class_of.(task)) with
      | Some (To_pe p), Some cls -> (
          match t.pe_class.(p) with
          | Some cls' when cls' <> cls ->
              invalid
                "constraints: tasks of classes %d and %d both pinned to PE %d"
                cls' cls p
          | Some _ -> ()
          | None ->
              t.pe_class.(p) <- Some cls;
              t.unclaimed <- t.unclaimed - 1;
              if not (Hashtbl.mem t.placed cls) then begin
                Hashtbl.replace t.placed cls ();
                t.unplaced <- t.unplaced - 1
              end)
      | _ -> ())
    pin_of;
  if t.unclaimed < t.unplaced then
    invalid
      "constraints: PE pins leave %d free PEs for %d unplaced isolation classes"
      t.unclaimed t.unplaced;
  t

let admissible t ~task ~pe ~(pes : Pe.inst array) =
  (match t.pin_of.(task) with
  | Some pin -> pin_allows pes pin pe
  | None -> true)
  &&
  match t.class_of.(task) with
  | None -> true
  | Some cls -> (
      match t.pe_class.(pe) with
      | Some cls' -> cls' = cls
      | None ->
          (* A fresh claim. An unplaced class always may (U >= K >= 1
             guarantees a PE); a placed class only while it leaves enough
             unclaimed PEs for the classes that still have none. *)
          if Hashtbl.mem t.placed cls then t.unclaimed > t.unplaced else true)

let commit t ~task ~pe =
  match t.class_of.(task) with
  | None -> ()
  | Some cls -> (
      match t.pe_class.(pe) with
      | Some _ -> ()
      | None ->
          t.pe_class.(pe) <- Some cls;
          t.unclaimed <- t.unclaimed - 1;
          if not (Hashtbl.mem t.placed cls) then begin
            Hashtbl.replace t.placed cls ();
            t.unplaced <- t.unplaced - 1
          end)

let infeasible_msg what =
  Printf.sprintf
    "%s: no admissible (task, PE) candidate under the pin/isolation \
     constraints"
    what

(* Post-hoc validation for the property suite and campaign artifacts. *)
let violations spec ~(pes : Pe.inst array) ~assignment =
  let n_tasks = Array.length assignment in
  let errs = ref [] in
  List.iter
    (fun (task, pin) ->
      if task >= 0 && task < n_tasks && not (pin_allows pes pin assignment.(task))
      then
        errs :=
          Printf.sprintf "task %d on PE %d violates its pin" task
            assignment.(task)
          :: !errs)
    spec.pins;
  let class_of = Hashtbl.create 8 in
  List.iter (fun (task, cls) -> Hashtbl.replace class_of task cls) spec.isolation;
  let pe_owner = Hashtbl.create 8 in
  Array.iteri
    (fun task pe ->
      match Hashtbl.find_opt class_of task with
      | None -> ()
      | Some cls -> (
          match Hashtbl.find_opt pe_owner pe with
          | Some cls' when cls' <> cls ->
              errs :=
                Printf.sprintf
                  "PE %d shared by isolation classes %d and %d (task %d)" pe
                  cls' cls task
                :: !errs
          | Some _ -> ()
          | None -> Hashtbl.replace pe_owner pe cls))
    assignment;
  List.rev !errs

let pp_pin ppf = function
  | To_pe p -> Format.fprintf ppf "pe:%d" p
  | To_kind k -> Format.fprintf ppf "kind:%d" k

let pp ppf s =
  Format.fprintf ppf "pins=[%s] isolation=[%s]"
    (String.concat ";"
       (List.map
          (fun (t, p) -> Format.asprintf "%d->%a" t pp_pin p)
          s.pins))
    (String.concat ";"
       (List.map (fun (t, c) -> Printf.sprintf "%d:%d" t c) s.isolation))
