module Graph = Tats_taskgraph.Graph
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library
module Comm = Tats_techlib.Comm
module Hotspot = Tats_thermal.Hotspot
module Stats = Tats_util.Stats

let pe_energies (s : Schedule.t) =
  let acc = Array.make (Schedule.n_pes s) 0.0 in
  Array.iter (fun (e : Schedule.entry) -> acc.(e.pe) <- acc.(e.pe) +. e.energy) s.entries;
  acc

let total_task_energy (s : Schedule.t) =
  Array.fold_left (fun acc (e : Schedule.entry) -> acc +. e.energy) 0.0 s.entries

let total_comm_energy (s : Schedule.t) ~lib =
  let comm = Library.comm lib in
  List.fold_left
    (fun acc { Graph.src; dst; data } ->
      acc
      +. Comm.energy_between comm ~src:s.entries.(src).Schedule.pe
           ~dst:s.entries.(dst).Schedule.pe ~data)
    0.0
    (Graph.edges s.graph)

let total_power s ~lib =
  (total_task_energy s +. total_comm_energy s ~lib) /. Float.max s.makespan 1e-9

let pe_average_powers (s : Schedule.t) =
  let horizon = Float.max s.makespan 1e-9 in
  Array.mapi
    (fun pe energy -> (energy /. horizon) +. s.pes.(pe).Pe.kind.Pe.idle_power)
    (pe_energies s)

let utilizations (s : Schedule.t) =
  let horizon = Float.max s.makespan 1e-9 in
  let busy = Array.make (Schedule.n_pes s) 0.0 in
  Array.iter
    (fun (e : Schedule.entry) -> busy.(e.pe) <- busy.(e.pe) +. (e.finish -. e.start))
    s.entries;
  Array.map (fun b -> b /. horizon) busy

let utilization_spread s = Stats.spread (utilizations s)

type thermal_report = {
  pe_powers : float array;
  block_temps : float array;
  max_temp : float;
  avg_temp : float;
}

let thermal_report ?(leakage = true) (s : Schedule.t) ~hotspot =
  if Hotspot.n_blocks hotspot <> Schedule.n_pes s then
    invalid_arg "Metrics.thermal_report: hotspot must have one block per PE";
  let horizon = Float.max s.makespan 1e-9 in
  let dynamic = Array.map (fun e -> e /. horizon) (pe_energies s) in
  let idle = Array.map (fun (i : Pe.inst) -> i.Pe.kind.Pe.idle_power) s.pes in
  let block_temps =
    if leakage then Hotspot.inquire_with_leakage hotspot ~dynamic ~idle
    else Hotspot.query hotspot ~power:(Array.mapi (fun i d -> d +. idle.(i)) dynamic)
  in
  let pe_powers = Array.mapi (fun i d -> d +. idle.(i)) dynamic in
  {
    pe_powers;
    block_temps;
    max_temp = Stats.max block_temps;
    avg_temp = Stats.mean block_temps;
  }

type row = { total_power : float; max_temp : float; avg_temp : float }

let row ?leakage s ~lib ~hotspot =
  let r = thermal_report ?leakage s ~hotspot in
  { total_power = total_power s ~lib; max_temp = r.max_temp; avg_temp = r.avg_temp }

let pp_row ppf { total_power; max_temp; avg_temp } =
  Format.fprintf ppf "%6.2f W  %7.2f °C max  %7.2f °C avg" total_power max_temp avg_temp

let power_profile (s : Schedule.t) ~lib ~time =
  Array.init (Schedule.n_pes s) (fun pe ->
      let idle = s.pes.(pe).Pe.kind.Pe.idle_power in
      let running =
        Array.fold_left
          (fun acc (e : Schedule.entry) ->
            if e.pe = pe && e.start <= time && time < e.finish then
              let tt = (Graph.task s.graph e.task).Tats_taskgraph.Task.task_type in
              acc +. Library.wcpc lib ~task_type:tt ~kind:s.pes.(pe).Pe.kind.Pe.kind_id
            else acc)
          0.0 s.entries
      in
      idle +. running)

let transient_peak (s : Schedule.t) ~lib ~hotspot ?(time_unit = 1e-3) ?(periods = 50)
    ?dt () =
  if Hotspot.n_blocks hotspot <> Schedule.n_pes s then
    invalid_arg "Metrics.transient_peak: hotspot must have one block per PE";
  if periods < 2 then invalid_arg "Metrics.transient_peak: need at least 2 periods";
  let profile = Replay.of_schedule ~time_unit ~lib s in
  Replay.peaks ~periods ?dt ~hotspot profile

let makespan_lower_bound graph ~lib ~n_pes =
  if n_pes < 1 then invalid_arg "Metrics.makespan_lower_bound: no PEs";
  let kinds = Library.kinds lib in
  let best_wcet task_type =
    Array.fold_left
      (fun acc (k : Pe.kind) ->
        Float.min acc (Library.wcet lib ~task_type ~kind:k.Pe.kind_id))
      infinity kinds
  in
  let critical_path =
    Tats_taskgraph.Criticality.compute
      ~node_weight:(fun t -> best_wcet t.Tats_taskgraph.Task.task_type)
      graph
  in
  let path_bound = Array.fold_left Float.max 0.0 critical_path in
  let work =
    Array.fold_left
      (fun acc (t : Tats_taskgraph.Task.t) ->
        acc +. best_wcet t.Tats_taskgraph.Task.task_type)
      0.0 (Graph.tasks graph)
  in
  Float.max path_bound (work /. float_of_int n_pes)

let idle_energy (s : Schedule.t) =
  let busy = Array.make (Schedule.n_pes s) 0.0 in
  Array.iter
    (fun (e : Schedule.entry) -> busy.(e.pe) <- busy.(e.pe) +. (e.finish -. e.start))
    s.entries;
  let acc = ref 0.0 in
  Array.iteri
    (fun pe b ->
      acc := !acc +. (s.pes.(pe).Pe.kind.Pe.idle_power *. Float.max 0.0 (s.makespan -. b)))
    busy;
  !acc

let power_gating_saving (s : Schedule.t) ~break_even =
  if break_even < 0.0 then invalid_arg "Metrics.power_gating_saving: negative break-even";
  let acc = ref 0.0 in
  for pe = 0 to Schedule.n_pes s - 1 do
    let idle = s.pes.(pe).Pe.kind.Pe.idle_power in
    let gaps =
      let entries = Schedule.tasks_on_pe s pe in
      let rec scan cursor = function
        | [] -> [ s.makespan -. cursor ]
        | (e : Schedule.entry) :: rest ->
            (e.start -. cursor) :: scan e.finish rest
      in
      scan 0.0 entries
    in
    List.iter
      (fun gap -> if gap > break_even then acc := !acc +. (idle *. gap))
      gaps
  done;
  !acc
