(** Safety-criticality placement constraints: pinned tasks and isolation
    groups, following the avionics-MPSoC setting of Benedikt et al.
    (PAPERS.md).

    A {!spec} is declarative and immutable:

    - {e Pins} restrict where a task may run — a concrete PE slot
      ([To_pe]) or any PE of a given kind ([To_kind]).
    - {e Isolation} assigns tasks to criticality classes; two tasks of
      {e different} classes may never share a PE. Unclassed tasks are
      unrestricted.

    Statically contradictory specs (out-of-range pins, a task pinned
    twice, more classes than PEs, different classes pinned to one PE, PE
    pins that starve the remaining classes) raise {!Invalid} with a
    descriptive message when the checker is built, before any scheduling
    work. If a scheduler's candidate scan comes up empty {e at runtime}
    under a valid spec (possible with kind-affinity pins), it raises
    {!Infeasible}.

    The stateful {!checker} maintains a claim invariant — unclaimed PEs
    never drop below the number of classes that own no PE yet — so the
    greedy schedulers cannot paint themselves into a corner by letting an
    already-placed class spread over the PEs a later class needs. *)

module Task = Tats_taskgraph.Task
module Pe = Tats_techlib.Pe

type pin =
  | To_pe of int  (** must run on this PE slot *)
  | To_kind of int  (** must run on a PE of this kind *)

type spec = {
  pins : (Task.id * pin) list;
  isolation : (Task.id * int) list;  (** task -> criticality class *)
}

val empty : spec
val is_empty : spec -> bool

exception Invalid of string
(** The spec is statically contradictory (raised by {!make}). *)

exception Infeasible of string
(** A scheduler's candidate scan found no admissible (task, PE) pair. *)

(** {1 Stateful checking (scheduler internals)} *)

type checker

val make : spec -> n_tasks:int -> pes:Pe.inst array -> checker
(** Validate [spec] against the platform and build a fresh checker.
    Raises {!Invalid} on contradiction. PE pins of classed tasks
    pre-claim their PE for that class. *)

val admissible : checker -> task:int -> pe:int -> pes:Pe.inst array -> bool
(** May [task] be placed on [pe] given the commitments so far? *)

val commit : checker -> task:int -> pe:int -> unit
(** Record an irrevocable placement (claims the PE for the task's class
    on first use). Callers must only commit admissible pairs. *)

val infeasible_msg : string -> string
(** Message for the {!Infeasible} raise, prefixed with the scheduler
    name. *)

(** {1 Post-hoc validation} *)

val violations : spec -> pes:Pe.inst array -> assignment:int array -> string list
(** Check a finished task->PE assignment against the spec; empty means
    every pin is honored and no PE is shared across classes. Used by the
    property suite and campaign artifacts. *)

val pp_pin : Format.formatter -> pin -> unit
val pp : Format.formatter -> spec -> unit
