module Graph = Tats_taskgraph.Graph
module Task = Tats_taskgraph.Task
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library
module Comm = Tats_techlib.Comm
module Hotspot = Tats_thermal.Hotspot
module Inquiry = Tats_thermal.Inquiry
module Trace = Tats_util.Trace
module Metricsreg = Tats_util.Metricsreg

let m_steps = Metricsreg.counter "sched.steps"
let m_candidates = Metricsreg.counter "sched.candidates"
let m_adaptive_attempts = Metricsreg.counter "sched.adaptive_attempts"

exception Thermal_policy_needs_hotspot

type state = {
  entries : Schedule.entry option array;
  pe_tasks : Schedule.entry list array; (* per PE, most recent first *)
  pe_energy : float array;
  mutable n_scheduled : int;
}

(* Earliest start of [task] on [pe]: data from every predecessor must have
   arrived, and the PE must be free — except for mutually exclusive
   predecessors-by-condition, which may overlap. *)
let earliest_start st ~comm ~exclusive graph task pe =
  let ready =
    List.fold_left
      (fun acc (pred, data) ->
        match st.entries.(pred) with
        | None -> assert false (* only called on ready tasks *)
        | Some e ->
            let delay = Comm.delay_between comm ~src:e.Schedule.pe ~dst:pe ~data in
            Float.max acc (e.Schedule.finish +. delay))
      0.0 (Graph.preds graph task)
  in
  let avail =
    List.fold_left
      (fun acc (e : Schedule.entry) ->
        if exclusive e.Schedule.task task then acc
        else Float.max acc e.Schedule.finish)
      0.0 st.pe_tasks.(pe)
  in
  Float.max ready avail

let run ?weights ?hotspot ?(exclusive = fun _ _ -> false) ?constraints ~graph
    ~lib ~pes ~policy () =
  let n = Graph.n_tasks graph in
  (* The checker is rebuilt per run (it is stateful), and absent entirely
     for unconstrained runs so the historical code path — float operation
     order included — is untouched. *)
  let checker =
    match constraints with
    | Some spec when not (Constraints.is_empty spec) ->
        Some (Constraints.make spec ~n_tasks:n ~pes)
    | _ -> None
  in
  let admissible task pe =
    match checker with
    | None -> true
    | Some c -> Constraints.admissible c ~task ~pe ~pes
  in
  let weights =
    match weights with
    | Some w -> w
    | None -> Policy.default_weights ~deadline:(Graph.deadline graph)
  in
  (match (policy, hotspot) with
  | Policy.Thermal_aware, None -> raise Thermal_policy_needs_hotspot
  | Policy.Thermal_aware, Some h ->
      if Hotspot.n_blocks h <> Array.length pes then
        invalid_arg "List_sched.run: hotspot must have one block per PE"
  | (Policy.Baseline | Policy.Power_aware _), _ -> ());
  Trace.with_span "sched.run"
    ~args:
      [
        ("policy", Trace.Str (Format.asprintf "%a" Policy.pp policy));
        ("tasks", Trace.Int n);
        ("pes", Trace.Int (Array.length pes));
      ]
  @@ fun () ->
  let comm = Library.comm lib in
  let sc = Dc.static_criticality lib graph in
  let idle = Array.map (fun (i : Pe.inst) -> i.Pe.kind.Pe.idle_power) pes in
  (* The inquiry engine is shared by every candidate evaluation; built once
     per run (n_blocks factored solves) and only for the thermal policy. *)
  let engine =
    match (policy, hotspot) with
    | Policy.Thermal_aware, Some h -> Some (Hotspot.inquiry h)
    | _ -> None
  in
  let st =
    {
      entries = Array.make n None;
      pe_tasks = Array.make (Array.length pes) [];
      pe_energy = Array.make (Array.length pes) 0.0;
      n_scheduled = 0;
    }
  in
  let unscheduled_preds = Array.make n 0 in
  for v = 0 to n - 1 do
    unscheduled_preds.(v) <- List.length (Graph.preds graph v)
  done;
  let module Iset = Set.Make (Int) in
  let ready =
    ref (List.fold_left (fun s v -> Iset.add v s) Iset.empty (Graph.sources graph))
  in
  while st.n_scheduled < n do
    assert (not (Iset.is_empty !ready));
    Metricsreg.incr m_steps;
    Metricsreg.add m_candidates (Iset.cardinal !ready * Array.length pes);
    Trace.with_span "sched.step"
      ~args:[ ("ready", Trace.Int (Iset.cardinal !ready)) ]
    @@ fun () ->
    (* One base solve per scheduling step: the influence response to the
       committed PE energies. Candidates below are delta-evaluated against
       it in O(n_blocks) each instead of re-solving from scratch. *)
    let base =
      match engine with
      | None -> None
      | Some e -> Some (Inquiry.base_response e ~power:st.pe_energy)
    in
    (* Scan every (ready task, PE) pair for the highest DC. *)
    let best = ref None in
    Iset.iter
      (fun task ->
        let tt = (Graph.task graph task).Task.task_type in
        Array.iteri
          (fun pe (inst : Pe.inst) ->
            if admissible task pe then begin
            let kind = inst.Pe.kind.Pe.kind_id in
            let wcet = Library.wcet lib ~task_type:tt ~kind in
            let task_energy = Library.energy lib ~task_type:tt ~kind in
            let start = earliest_start st ~comm ~exclusive graph task pe in
            let finish = start +. wcet in
            let cost =
              match policy with
              | Policy.Baseline -> 0.0
              | Policy.Power_aware Policy.Min_task_power ->
                  Dc.cost_task_power lib ~task_type:tt ~kind
              | Policy.Power_aware Policy.Min_pe_average_power ->
                  Dc.cost_pe_average_power lib ~pe_energy:st.pe_energy.(pe)
                    ~task_energy ~finish
              | Policy.Power_aware Policy.Min_task_energy ->
                  Dc.cost_task_energy lib ~task_type:tt ~kind
              | Policy.Thermal_aware ->
                  let engine = Option.get engine in
                  let base = Option.get base in
                  let task_power = Library.wcpc lib ~task_type:tt ~kind in
                  Dc.cost_thermal ~engine ~base ~idle ~finish ~pe
                    ~task_power
            in
            let dc =
              Dc.value ~sc:sc.(task) ~wcet ~start ~cost
                ~weight:weights.Policy.cost_weight
            in
            let better =
              match !best with
              | None -> true
              | Some (dc', task', pe', _, _, _) ->
                  dc > dc' +. 1e-12
                  || (Float.abs (dc -. dc') <= 1e-12
                     && (task < task' || (task = task' && pe < pe')))
            in
            if better then best := Some (dc, task, pe, start, finish, task_energy)
            end)
          pes)
      !ready;
    (match !best with
    | None -> (
        match checker with
        | Some _ ->
            raise
              (Constraints.Infeasible
                 (Constraints.infeasible_msg "List_sched.run"))
        | None -> assert false)
    | Some (_, task, pe, start, finish, task_energy) ->
        (match checker with
        | Some c -> Constraints.commit c ~task ~pe
        | None -> ());
        let entry = { Schedule.task; pe; start; finish; energy = task_energy } in
        st.entries.(task) <- Some entry;
        st.pe_tasks.(pe) <- entry :: st.pe_tasks.(pe);
        st.pe_energy.(pe) <- st.pe_energy.(pe) +. task_energy;
        st.n_scheduled <- st.n_scheduled + 1;
        ready := Iset.remove task !ready;
        List.iter
          (fun (succ, _) ->
            unscheduled_preds.(succ) <- unscheduled_preds.(succ) - 1;
            if unscheduled_preds.(succ) = 0 then ready := Iset.add succ !ready)
          (Graph.succs graph task))
  done;
  let entries =
    Array.mapi
      (fun i e ->
        match e with
        | Some e -> e
        | None ->
            failwith
              (Printf.sprintf
                 "List_sched.run: internal error: task %d was never scheduled" i))
      st.entries
  in
  Schedule.make ~graph ~pes ~entries

let run_adaptive ?base_weights ?(max_multiplier = 400.0) ?(search_steps = 16)
    ?hotspot ?exclusive ?constraints ~graph ~lib ~pes ~policy () =
  if max_multiplier <= 0.0 then
    invalid_arg "List_sched.run_adaptive: non-positive multiplier";
  let base =
    match base_weights with
    | Some w -> w
    | None -> Policy.default_weights ~deadline:(Graph.deadline graph)
  in
  let attempt mult =
    Metricsreg.incr m_adaptive_attempts;
    Trace.with_span "sched.attempt" ~args:[ ("multiplier", Trace.Float mult) ]
    @@ fun () ->
    let weights = { Policy.cost_weight = base.Policy.cost_weight *. mult } in
    (run ~weights ?hotspot ?exclusive ?constraints ~graph ~lib ~pes ~policy (), weights)
  in
  let meets (s, _) = Schedule.meets_deadline s in
  let ceiling = attempt max_multiplier in
  if meets ceiling then ceiling
  else begin
    (* At multiplier 0 the cost term vanishes and the schedule is the pure
       performance-driven one; if even that misses the deadline, the
       architecture is simply too small and the caller must react. *)
    let floor = attempt 0.0 in
    if not (meets floor) then floor
    else begin
      (* Bisect for the feasibility boundary; keep the strongest feasible
         weight seen. *)
      let best = ref floor in
      let lo = ref 0.0 and hi = ref max_multiplier in
      for _ = 1 to search_steps do
        let mid = (!lo +. !hi) /. 2.0 in
        let candidate = attempt mid in
        if meets candidate then begin
          best := candidate;
          lo := mid
        end
        else hi := mid
      done;
      !best
    end
  end
