(** Text rendering of the regenerated tables, side by side with the paper's
    published numbers, plus CSV export. *)

val table1 : Experiments.table1_row list -> string
val table2 : Experiments.versus_row list -> string
val table3 : Experiments.versus_row list -> string

val shape_checks : Experiments.shape_check list -> string

val pool_stats : Tats_util.Pool.stats -> string
(** Multi-line summary of a {!Tats_util.Pool} snapshot: pool size, batch /
    task / wait counters, and per-domain busy time with its share of the
    total (the [--stats] / bench view of parallel utilization). *)

val versus_csv : Experiments.versus_row list -> string
(** Header + one line per benchmark: measured power/max/avg for both
    approaches. *)

val table1_csv : Experiments.table1_row list -> string

val versus_markdown : title:string -> paper:Paper_data.versus array ->
  Experiments.versus_row list -> string
(** GitHub-flavoured markdown: one row per benchmark with measured and paper
    cells side by side (the format EXPERIMENTS.md uses). *)

val table1_markdown : Experiments.table1_row list -> string

val transient_demo : Experiments.transient_demo -> string
(** Fixed-format rendering of {!Experiments.transient_demo} — the
    transient/DTM golden (test/goldens/transient.golden) byte-compares
    this string. *)

val online_demo : Experiments.online_demo -> string
(** Fixed-format rendering of {!Experiments.online_demo} — the online
    golden (test/goldens/online.golden) byte-compares this string. *)

val hetero_demo : Experiments.hetero_demo -> string
(** Fixed-format rendering of {!Experiments.hetero_demo} — the
    heterogeneous-platform golden (test/goldens/hetero.golden)
    byte-compares this string. *)

val campaign_summary : Tats_campaign.Campaign.summary -> string
(** Fixed-format rendering of a campaign's cells in expansion order —
    what [tats campaign report] prints and what the campaign golden
    (test/goldens/campaign.golden) byte-compares. *)

val campaign_gate : Tats_campaign.Campaign.gate_report -> string
(** Human-readable gate verdict: per-finding drift/regression lines and
    a final PASS/FAIL ([tats campaign gate] exits 2 on FAIL). *)
