(** TATS — Thermal-Aware Task Allocation and Scheduling.

    OCaml reproduction of Hung, Xie, Vijaykrishnan, Kandemir & Irwin,
    "Thermal-Aware Task Allocation and Scheduling for Embedded Systems"
    (DATE 2005), together with every substrate it relies on: task graphs, a
    technology library, a HotSpot-style compact thermal model, a GA
    floorplanner, the list-scheduling ASP, and the two co-synthesis flows.

    {1 Quick start}

    {[
      let graph = Core.Benchmarks.load 0 in        (* Bm1 *)
      let lib = Core.Catalog.platform_library () in
      let outcome =
        Core.Flow.run_platform ~graph ~lib ~policy:Core.Policy.Thermal_aware ()
      in
      Format.printf "%a@." Core.Metrics.pp_row outcome.Core.Flow.row
    ]} *)

(** {1 Substrate modules} *)

module Rng = Tats_util.Rng
module Fsio = Tats_util.Fsio
module Stats = Tats_util.Stats
module Pool = Tats_util.Pool
module Trace = Tats_util.Trace
module Metricsreg = Tats_util.Metricsreg
module Matrix = Tats_linalg.Matrix
module Lu = Tats_linalg.Lu
module Sparse = Tats_linalg.Sparse
module Cg = Tats_linalg.Cg
module Task = Tats_taskgraph.Task
module Graph = Tats_taskgraph.Graph
module Criticality = Tats_taskgraph.Criticality
module Analysis = Tats_taskgraph.Analysis
module Generator = Tats_taskgraph.Generator
module Benchmarks = Tats_taskgraph.Benchmarks
module Cond = Tats_taskgraph.Cond
module Cluster = Tats_taskgraph.Cluster
module Dot = Tats_taskgraph.Dot
module Tgff_io = Tats_taskgraph.Tgff_io
module Pe = Tats_techlib.Pe
module Comm = Tats_techlib.Comm
module Library = Tats_techlib.Library
module Catalog = Tats_techlib.Catalog
module Platform = Tats_techlib.Platform
module Block = Tats_floorplan.Block
module Placement = Tats_floorplan.Placement
module Slicing = Tats_floorplan.Slicing
module Ga = Tats_floorplan.Ga
module Sa = Tats_floorplan.Sa
module Grid = Tats_floorplan.Grid
module Package = Tats_thermal.Package
module Rcmodel = Tats_thermal.Rcmodel
module Steady = Tats_thermal.Steady
module Transient = Tats_thermal.Transient
module Gridmodel = Tats_thermal.Gridmodel
module Stack = Tats_thermal.Stack
module Hotspot = Tats_thermal.Hotspot
module Inquiry = Tats_thermal.Inquiry
module Policy = Tats_sched.Policy
module Schedule = Tats_sched.Schedule
module Constraints = Tats_sched.Constraints
module Dc = Tats_sched.Dc
module List_sched = Tats_sched.List_sched
module Heft = Tats_sched.Heft
module Sa_mapper = Tats_sched.Sa_mapper
module Dvs = Tats_sched.Dvs
module Bus_sched = Tats_sched.Bus_sched
module Periodic = Tats_sched.Periodic
module Dtm = Tats_sched.Dtm
module Replay = Tats_sched.Replay
module Online = Tats_sched.Online
module Montecarlo = Tats_sched.Montecarlo
module Metrics = Tats_sched.Metrics
module Svg = Tats_render.Svg
module Visuals = Tats_render.Visuals
module Alloc = Tats_cosynth.Alloc
module Flow = Tats_cosynth.Flow
module Pareto = Tats_cosynth.Pareto
module Serve = Tats_serve
module Campaign = Tats_campaign.Campaign

(** {1 Experiment reproduction} *)

module Phases = Phases
module Experiments = Experiments
module Paper_data = Paper_data
module Report = Report

(** {1 Convenience} *)

val version : string

val schedule_platform :
  ?n_pes:int -> ?policy:Policy.t -> Graph.t -> Flow.outcome
(** Platform-flow shortcut with the default platform library; policy
    defaults to [Thermal_aware]. *)

val schedule_cosynthesis : ?policy:Policy.t -> Graph.t -> Flow.outcome
(** Co-synthesis shortcut with the default heterogeneous library; policy
    defaults to [Thermal_aware]. *)
