(** The single source of truth for the bench harness's phase list.

    [bench/main.ml] used to carry its own [known_phases] string list,
    which could drift from the [timed_phase] calls and from the dune test
    aliases that mirror the per-subsystem phases. Both now derive from
    {!all}: the bench harness takes its [--only] vocabulary from
    {!names}, and [test_campaign]'s drift check asserts that every
    {!aliases} entry exists in [test/dune] (as an alias rule and as a
    [runtest] attachment where applicable). Adding a phase here and
    forgetting the wiring is a test failure, not a silent gap. *)

type entry = {
  phase : string;  (** the [timed_phase] / [--only] name *)
  alias : string option;
      (** the dune alias ([dune build @<alias>]) running the matching
          fast test battery, when the phase has one *)
}

val all : entry list
(** In bench execution order. *)

val names : string list
(** All phase names — [bench/main.exe]'s [known_phases]. *)

val aliases : string list
(** The dune aliases declared by phases that have one. *)
