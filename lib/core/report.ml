module Metrics = Tats_sched.Metrics
module Policy = Tats_sched.Policy
module Pool = Tats_util.Pool

let pool_stats (s : Pool.stats) =
  let busy_total = Array.fold_left ( +. ) 0.0 s.Pool.busy in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "Execution pool: %d job%s, %d batch%s, %d tasks, %d steal%s, %d \
        park%s, max deque depth %d\n"
       s.Pool.jobs
       (if s.Pool.jobs = 1 then "" else "s")
       s.Pool.batches
       (if s.Pool.batches = 1 then "" else "es")
       s.Pool.tasks s.Pool.steals
       (if s.Pool.steals = 1 then "" else "s")
       s.Pool.parks
       (if s.Pool.parks = 1 then "" else "s")
       s.Pool.max_deque_depth);
  Array.iteri
    (fun i b ->
      Buffer.add_string buf
        (Printf.sprintf "  domain %d%s  %8.3f s busy (%5.1f%%)\n" i
           (if i = 0 then " (caller)" else "         ")
           b
           (if busy_total <= 0.0 then 0.0 else 100.0 *. b /. busy_total)))
    s.Pool.busy;
  Buffer.contents buf

let cell_to_string (c : Metrics.row) =
  Printf.sprintf "%6.2f %7.2f %7.2f" c.Metrics.total_power c.Metrics.max_temp
    c.Metrics.avg_temp

let paper_cell_to_string (c : Paper_data.cell) =
  Printf.sprintf "%6.2f %7.2f %7.2f" c.Paper_data.total_power c.Paper_data.max_temp
    c.Paper_data.avg_temp

let header = "  Pow(W)  MaxT(C) AvgT(C)"

let paper_table1_cell bench policy arch =
  let g =
    Array.to_list Paper_data.table1
    |> List.find (fun (g : Paper_data.table1_group) -> String.equal g.bench bench)
  in
  match (policy, arch) with
  | Policy.Baseline, `Cosynth -> g.Paper_data.baseline_cosynth
  | Policy.Power_aware Policy.Min_task_power, `Cosynth -> g.Paper_data.h1_cosynth
  | Policy.Power_aware Policy.Min_pe_average_power, `Cosynth -> g.Paper_data.h2_cosynth
  | Policy.Power_aware Policy.Min_task_energy, `Cosynth -> g.Paper_data.h3_cosynth
  | Policy.Baseline, `Platform -> g.Paper_data.baseline_platform
  | Policy.Power_aware Policy.Min_task_power, `Platform -> g.Paper_data.h1_platform
  | Policy.Power_aware Policy.Min_pe_average_power, `Platform -> g.Paper_data.h2_platform
  | Policy.Power_aware Policy.Min_task_energy, `Platform -> g.Paper_data.h3_platform
  | Policy.Thermal_aware, _ -> invalid_arg "thermal is not a Table 1 policy"

let table1 rows =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Table 1 — power heuristics under co-synthesis and platform architectures\n";
  Buffer.add_string buf
    (Printf.sprintf "%-4s %-9s | measured co-synthesis%s | measured platform%s\n" ""
       "" header header);
  Buffer.add_string buf
    (Printf.sprintf "%-4s %-9s | paper    co-synthesis%s | paper    platform%s\n" ""
       "" header header);
  Buffer.add_string buf (String.make 118 '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun (r : Experiments.table1_row) ->
      Buffer.add_string buf
        (Printf.sprintf "%-4s %-9s | measured %s | measured %s\n" r.Experiments.bench
           (Policy.name r.Experiments.policy)
           (cell_to_string r.Experiments.cosynth)
           (cell_to_string r.Experiments.platform));
      Buffer.add_string buf
        (Printf.sprintf "%-4s %-9s | paper    %s | paper    %s\n" "" ""
           (paper_cell_to_string
              (paper_table1_cell r.Experiments.bench r.Experiments.policy `Cosynth))
           (paper_cell_to_string
              (paper_table1_cell r.Experiments.bench r.Experiments.policy `Platform))))
    rows;
  Buffer.contents buf

let versus_table ~title ~paper rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "%-4s          | power-aware%s | thermal-aware%s\n" "" header header);
  Buffer.add_string buf (String.make 100 '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun (r : Experiments.versus_row) ->
      Buffer.add_string buf
        (Printf.sprintf "%-4s measured | %s | %s\n" r.Experiments.bench
           (cell_to_string r.Experiments.power)
           (cell_to_string r.Experiments.thermal));
      let p =
        Array.to_list paper
        |> List.find (fun (v : Paper_data.versus) ->
               String.equal v.Paper_data.bench r.Experiments.bench)
      in
      Buffer.add_string buf
        (Printf.sprintf "%-4s paper    | %s | %s\n" ""
           (paper_cell_to_string p.Paper_data.power)
           (paper_cell_to_string p.Paper_data.thermal)))
    rows;
  let r = Experiments.average_reduction rows in
  Buffer.add_string buf
    (Printf.sprintf
       "average reduction: measured %.2f °C max / %.2f °C avg  (paper: %.2f / %.2f)\n"
       r.Experiments.d_max_temp r.Experiments.d_avg_temp
       (fst (if paper == Paper_data.table2 then Paper_data.table2_avg_reduction
             else Paper_data.table3_avg_reduction))
       (snd (if paper == Paper_data.table2 then Paper_data.table2_avg_reduction
             else Paper_data.table3_avg_reduction)));
  Buffer.contents buf

let table2 rows =
  versus_table
    ~title:"Table 2 — power-aware vs thermal-aware, co-synthesis architecture"
    ~paper:Paper_data.table2 rows

let table3 rows =
  versus_table
    ~title:"Table 3 — power-aware vs thermal-aware, platform architecture"
    ~paper:Paper_data.table3 rows

let shape_checks checks =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Shape checks (reproduction criteria):\n";
  List.iter
    (fun (c : Experiments.shape_check) ->
      Buffer.add_string buf
        (Printf.sprintf "  [%s] %s — %s\n"
           (if c.Experiments.holds then "PASS" else "FAIL")
           c.Experiments.check c.Experiments.detail))
    checks;
  Buffer.contents buf

let versus_csv rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "bench,power_total_w,power_max_c,power_avg_c,thermal_total_w,thermal_max_c,thermal_avg_c\n";
  List.iter
    (fun (r : Experiments.versus_row) ->
      let p = r.Experiments.power and t = r.Experiments.thermal in
      Buffer.add_string buf
        (Printf.sprintf "%s,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n" r.Experiments.bench
           p.Metrics.total_power p.Metrics.max_temp p.Metrics.avg_temp
           t.Metrics.total_power t.Metrics.max_temp t.Metrics.avg_temp))
    rows;
  Buffer.contents buf

let table1_csv rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "bench,policy,cosynth_total_w,cosynth_max_c,cosynth_avg_c,platform_total_w,platform_max_c,platform_avg_c\n";
  List.iter
    (fun (r : Experiments.table1_row) ->
      let c = r.Experiments.cosynth and p = r.Experiments.platform in
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n" r.Experiments.bench
           (Policy.name r.Experiments.policy)
           c.Metrics.total_power c.Metrics.max_temp c.Metrics.avg_temp
           p.Metrics.total_power p.Metrics.max_temp p.Metrics.avg_temp))
    rows;
  Buffer.contents buf

let md_cell (c : Metrics.row) =
  Printf.sprintf "%.2f / %.2f / %.2f" c.Metrics.total_power c.Metrics.max_temp
    c.Metrics.avg_temp

let md_paper_cell (c : Paper_data.cell) =
  Printf.sprintf "%.2f / %.2f / %.2f" c.Paper_data.total_power c.Paper_data.max_temp
    c.Paper_data.avg_temp

let versus_markdown ~title ~paper rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "## %s\n\n" title);
  Buffer.add_string buf
    "| Bench | measured power | measured thermal | paper power | paper thermal |\n";
  Buffer.add_string buf "|---|---|---|---|---|\n";
  List.iter
    (fun (r : Experiments.versus_row) ->
      let p =
        Array.to_list paper
        |> List.find (fun (v : Paper_data.versus) ->
               String.equal v.Paper_data.bench r.Experiments.bench)
      in
      Buffer.add_string buf
        (Printf.sprintf "| %s | %s | %s | %s | %s |\n" r.Experiments.bench
           (md_cell r.Experiments.power)
           (md_cell r.Experiments.thermal)
           (md_paper_cell p.Paper_data.power)
           (md_paper_cell p.Paper_data.thermal)))
    rows;
  let r = Experiments.average_reduction rows in
  Buffer.add_string buf
    (Printf.sprintf "\nAverage reduction: **%.2f °C max / %.2f °C avg**.\n"
       r.Experiments.d_max_temp r.Experiments.d_avg_temp);
  Buffer.contents buf

let table1_markdown rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "## Table 1 — power heuristics, both architectures\n\n";
  Buffer.add_string buf
    "| Bench | Policy | measured co-synth | paper co-synth | measured platform | \
     paper platform |\n|---|---|---|---|---|---|\n";
  List.iter
    (fun (r : Experiments.table1_row) ->
      Buffer.add_string buf
        (Printf.sprintf "| %s | %s | %s | %s | %s | %s |\n" r.Experiments.bench
           (Policy.name r.Experiments.policy)
           (md_cell r.Experiments.cosynth)
           (md_paper_cell
              (paper_table1_cell r.Experiments.bench r.Experiments.policy `Cosynth))
           (md_cell r.Experiments.platform)
           (md_paper_cell
              (paper_table1_cell r.Experiments.bench r.Experiments.policy `Platform))))
    rows;
  Buffer.contents buf

let transient_demo (d : Experiments.transient_demo) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "Transient replay — %s, thermal-aware platform schedule\n\
        period %.6f s, dt %.6f s, %d periods, %d steps\n"
       d.Experiments.t_bench d.Experiments.period_s d.Experiments.dt_s
       d.Experiments.t_periods d.Experiments.t_steps);
  Buffer.add_string buf "PE  steady °C  transient peak °C  ripple °C\n";
  Array.iteri
    (fun pe peak ->
      let st = d.Experiments.pe_steady.(pe) in
      Buffer.add_string buf
        (Printf.sprintf "%2d   %8.4f           %8.4f    %+7.4f\n" pe st peak
           (peak -. st)))
    d.Experiments.pe_transient_peak;
  Buffer.add_string buf
    (Printf.sprintf
       "DTM (trigger 70 °C): makespan %.4f, peak %.4f °C, throttled %.6f\n"
       d.Experiments.dtm_makespan d.Experiments.dtm_peak
       d.Experiments.dtm_throttled);
  Buffer.contents buf

let online_demo (d : Experiments.online_demo) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "Online scheduling vs clairvoyant — %s, platform, sporadic seed %d\n"
       d.Experiments.o_bench d.Experiments.o_seed);
  Buffer.add_string buf
    "arrivals  policy    ev dfr   makespan  clairvoyant  ratio     peak °C  \
     clair °C   ratio\n";
  List.iter
    (fun (r : Experiments.online_row) ->
      Buffer.add_string buf
        (Printf.sprintf
           "%-8s  %-8s %3d %3d  %9.4f    %9.4f %6.4f   %8.4f  %8.4f  %6.4f\n"
           r.Experiments.o_arrivals r.Experiments.o_policy r.Experiments.o_events
           r.Experiments.o_deferrals r.Experiments.o_makespan
           r.Experiments.o_clair_makespan r.Experiments.o_makespan_ratio
           r.Experiments.o_peak r.Experiments.o_clair_peak
           r.Experiments.o_peak_ratio))
    d.Experiments.o_rows;
  Buffer.contents buf

let hetero_demo (d : Experiments.hetero_demo) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "Heterogeneous platforms — %s, platform flow\n"
       d.Experiments.h_bench);
  Buffer.add_string buf
    "platform    slots                      policy    pins cls   makespan  \
     tot pow W  max T °C  avg T °C      cost\n";
  List.iter
    (fun (r : Experiments.hetero_row) ->
      Buffer.add_string buf
        (Printf.sprintf
           "%-10s  %-25s  %-8s  %4d %3d  %9.4f  %9.4f  %8.4f  %8.4f  %8.1f\n"
           r.Experiments.h_platform r.Experiments.h_slots
           (Policy.name r.Experiments.h_policy)
           r.Experiments.h_pins r.Experiments.h_classes r.Experiments.h_makespan
           r.Experiments.h_cell.Metrics.total_power
           r.Experiments.h_cell.Metrics.max_temp
           r.Experiments.h_cell.Metrics.avg_temp r.Experiments.h_arch_cost))
    d.Experiments.h_rows;
  Buffer.add_string buf
    (Printf.sprintf "degenerate std4 == identical-cores path (all policies): %s\n"
       (if d.Experiments.h_degenerate_identical then "bit-identical"
        else "DIVERGED"));
  Buffer.contents buf

let campaign_summary (s : Tats_campaign.Campaign.summary) =
  let module C = Tats_campaign.Campaign in
  let buf = Buffer.create 2048 in
  let cells = s.C.cells in
  let n = List.length cells in
  let distinct label =
    List.length (List.sort_uniq compare (List.map label cells))
  in
  Buffer.add_string buf
    (Printf.sprintf "Campaign %s — %d cells (%d graphs x %d policies x %d platforms)\n"
       s.C.campaign_name n
       (distinct (fun ((c : C.cell), _) -> C.graph_label c.C.graph))
       (distinct (fun ((c : C.cell), _) -> Tats_sched.Policy.name c.C.policy))
       (distinct (fun ((c : C.cell), _) -> C.platform_label c.C.platform)));
  Buffer.add_string buf
    "graph      policy    arch      ambient   budget    makespan   tot pow W  \
     max T °C  avg T °C  deadline\n";
  let met = ref 0 and within = ref 0 in
  let peak = ref neg_infinity and peak_cell = ref "" in
  List.iter
    (fun ((c : C.cell), (r : C.result)) ->
      if r.C.deadline_met then incr met;
      if r.C.within_budget then incr within;
      if r.C.max_temp > !peak then begin
        peak := r.C.max_temp;
        peak_cell := C.cell_label c
      end;
      let arch =
        match c.C.platform.C.arch with
        | C.Platform n_pes -> Printf.sprintf "p%d" n_pes
        | C.Hetero name -> name
        | C.Cosynth -> "cosynth"
      in
      let budget =
        match c.C.platform.C.power_budget with
        | None -> "-"
        | Some b -> Printf.sprintf "%g" b
      in
      Buffer.add_string buf
        (Printf.sprintf
           "%-10s %-9s %-8s %8.1f %8s %11.4f %11.4f %9.4f %9.4f %9.1f %s %s\n"
           (C.graph_label c.C.graph)
           (Tats_sched.Policy.name c.C.policy)
           arch c.C.platform.C.ambient budget r.C.makespan r.C.total_power
           r.C.max_temp r.C.avg_temp r.C.deadline
           (if r.C.deadline_met then "met" else "MISS")
           (if r.C.within_budget then "ok" else "OVER")))
    cells;
  Buffer.add_string buf
    (Printf.sprintf
       "deadline met %d/%d, within budget %d/%d; peak %.4f °C (%s)\n" !met n
       !within n !peak !peak_cell);
  Buffer.contents buf

let campaign_gate (g : Tats_campaign.Campaign.gate_report) =
  let module C = Tats_campaign.Campaign in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "campaign gate: compared %d cells — %d clean, %d drifted, %d regressed, \
        %d missing, %d extra\n"
       g.C.compared g.C.clean
       (List.length g.C.drifted)
       (List.length g.C.regressed)
       (List.length g.C.missing)
       (List.length g.C.extra));
  let finding tag (f : C.finding) =
    Buffer.add_string buf
      (Printf.sprintf "  %-6s %s %s %.4f -> %.4f (%+.4f, tol %.4f)\n" tag
         f.C.g_cell f.C.g_metric f.C.g_base f.C.g_cand (f.C.g_cand -. f.C.g_base)
         f.C.g_tol)
  in
  List.iter (finding "drift") g.C.drifted;
  List.iter (finding "REGR") g.C.regressed;
  List.iter
    (fun label -> Buffer.add_string buf (Printf.sprintf "  MISSING %s\n" label))
    g.C.missing;
  List.iter
    (fun label -> Buffer.add_string buf (Printf.sprintf "  extra   %s\n" label))
    g.C.extra;
  Buffer.add_string buf
    (if C.gate_passes g then "verdict: PASS\n" else "verdict: FAIL\n");
  Buffer.contents buf
