type entry = { phase : string; alias : string option }

let all =
  [
    { phase = "tables"; alias = None };
    { phase = "figure1"; alias = None };
    { phase = "ablation-weight-sweep"; alias = None };
    { phase = "ablation-leakage"; alias = None };
    { phase = "ablation-ga-effort"; alias = None };
    { phase = "ablation-solvers"; alias = None };
    { phase = "ablation-floorplanners"; alias = None };
    { phase = "ablation-mappers"; alias = None };
    { phase = "ablation-dvs"; alias = None };
    { phase = "ablation-bus"; alias = None };
    { phase = "ablation-stack"; alias = None };
    { phase = "ablation-clustering"; alias = None };
    { phase = "ablation-refinement"; alias = None };
    { phase = "ablation-dtm"; alias = None };
    { phase = "ablation-montecarlo"; alias = None };
    { phase = "design-space"; alias = None };
    { phase = "parallel-scaling"; alias = None };
    { phase = "kernels"; alias = Some "kernels" };
    { phase = "transient"; alias = Some "transient" };
    { phase = "online"; alias = Some "online" };
    { phase = "serve"; alias = Some "serve" };
    { phase = "campaign"; alias = Some "campaign" };
    { phase = "hetero"; alias = Some "hetero" };
    { phase = "observability-overhead"; alias = None };
    { phase = "timings"; alias = None };
  ]

let names = List.map (fun e -> e.phase) all
let aliases = List.filter_map (fun e -> e.alias) all
