(** Drivers that regenerate every table of the paper's evaluation.

    All runs are deterministic: fixed benchmark seeds, fixed library seed,
    fixed GA seed. Tables 2 and 3 reuse the Table 1 machinery with the
    paper's conclusion baked in (H3 is the power-aware representative). *)

module Policy = Tats_sched.Policy
module Metrics = Tats_sched.Metrics
module Flow = Tats_cosynth.Flow

type cell = Metrics.row

type arch = Cosynthesis | Platform

val arch_name : arch -> string

val run_one : arch:arch -> policy:Policy.t -> bench:int -> cell
(** One table cell: benchmark index in [0..3]. *)

type table1_row = { bench : string; policy : Policy.t; cosynth : cell; platform : cell }

val table1 : ?pool:Tats_util.Pool.t -> unit -> table1_row list
(** 4 benchmarks x (baseline, h1, h2, h3), Table 1 order. Independent
    cells are evaluated on [pool] (default: {!Tats_util.Pool.default});
    cell values are pure, so the table is identical at any pool size. *)

type versus_row = { bench : string; power : cell; thermal : cell }

val table2 : ?pool:Tats_util.Pool.t -> unit -> versus_row list
(** Power-aware (h3) vs thermal-aware on the co-synthesis architecture.
    Parallel over cells, like {!table1}. *)

val table3 : ?pool:Tats_util.Pool.t -> unit -> versus_row list
(** Same comparison on the platform architecture. *)

type reduction = { d_max_temp : float; d_avg_temp : float }

val average_reduction : versus_row list -> reduction
(** Mean (power - thermal) over the rows; positive = thermal wins. *)

type shape_check = { check : string; holds : bool; detail : string }

val shape_checks :
  table1:table1_row list ->
  table2:versus_row list ->
  table3:versus_row list ->
  shape_check list
(** The reproduction criteria of DESIGN.md §2: H3 best power heuristic,
    thermal beats power on max and avg temperature on both architectures,
    platform cooler than co-synthesis. *)

val workload_balance : bench:int -> (Policy.t * float) list
(** Utilization spread (max - min) per policy on the platform architecture —
    evidence for the paper's "thermal ASP balances the workloads" claim. *)

type robustness = {
  n_graphs : int;
  wins_max : int;  (** graphs where thermal max-temp beats power-aware *)
  wins_avg : int;
  mean_reduction : reduction; (** mean (power - thermal) over the sample *)
}

val robustness : ?n:int -> ?seed:int -> ?tasks:int -> unit -> robustness
(** Beyond the paper's four benchmarks: draw [n] (default 12) random
    layered graphs of [tasks] (default 30) tasks with random edge counts
    and deadlines, and compare the power-aware (h3) and thermal-aware
    platform flows on each. The paper's conclusion should not depend on
    its particular benchmark draws; this measures how often it holds on
    fresh ones. Deterministic in [seed] (default 2005). *)

type floorplan_study_row = {
  seed : int;
  n_blocks : int;
  area_only_peak : float;    (** peak °C of the area-driven floorplan *)
  thermal_aware_peak : float;
  area_overhead : float;     (** thermal-aware die area / area-only die area *)
}

val floorplan_study : ?seeds:int list -> ?n_blocks:int -> unit -> floorplan_study_row list
(** The ISQED'05 [3] experiment shape: on random block sets with random
    power assignments, compare the GA floorplanner under its area objective
    against the thermal-aware objective (area + peak temperature). The
    thermal-aware floorplan separates hot blocks at a small area cost.
    [seeds] defaults to [1; 2; 3; 4]; [n_blocks] to 6. *)

type transient_demo = {
  t_bench : string;
  period_s : float;          (** one schedule period, seconds *)
  dt_s : float;              (** integration step, seconds *)
  t_periods : int;
  t_steps : int;             (** integration steps the replay took *)
  pe_steady : float array;   (** steady-state per-PE temperature, °C *)
  pe_transient_peak : float array;
      (** per-PE peak over the last replayed period, °C *)
  dtm_makespan : float;
  dtm_peak : float;
  dtm_throttled : float;
}

val transient_demo : ?bench:int -> ?periods:int -> unit -> transient_demo
(** Deterministic end-to-end exercise of the event-driven transient engine
    and the DTM simulator on one platform benchmark (default Bm1,
    thermal-aware policy): replay the schedule's exact power breakpoints
    for [periods] (default 25) periods at dt = period/100, and run DTM with
    a 70 °C trigger. The golden test byte-compares
    {!Report.transient_demo} of this value. *)

type online_row = {
  o_arrivals : string;          (** "zero" / "sporadic" / "trace" *)
  o_policy : string;
  o_events : int;               (** decision points the event loop visited *)
  o_deferrals : int;            (** reactive cooldown stalls *)
  o_makespan : float;
  o_clair_makespan : float;
  o_makespan_ratio : float;     (** empirical competitive ratio, >= 1 *)
  o_peak : float;               (** replay-scored peak temperature, °C *)
  o_clair_peak : float;
  o_peak_ratio : float;
}

type online_demo = { o_bench : string; o_seed : int; o_rows : online_row list }

val online_demo : ?bench:int -> ?seed:int -> unit -> online_demo
(** Deterministic exercise of the online reactive scheduler (default Bm1,
    seed 1) across the arrival sources and policies: the degenerate zero
    stream (whose makespan ratio is exactly 1 — online equals offline bit
    for bit), seeded sporadic streams under mirror and reactive policies,
    and the trace-driven stream. Every scenario goes through
    {!Tats_cosynth.Flow.run_online}. The golden test byte-compares
    {!Report.online_demo} of this value. *)

val campaign_demo : unit -> Tats_campaign.Campaign.summary
(** The builtin ["golden"] campaign (one paper benchmark plus one
    generated DAG, three policies, two ambient/budget platform points)
    run sequentially in memory via {!Tats_campaign.Campaign.collect} —
    bit-identical to running the same spec through
    {!Tats_campaign.Campaign.run} and summarizing its manifest. The
    golden test byte-compares {!Report.campaign_summary} of this
    value. *)

type hetero_row = {
  h_platform : string;          (** builtin platform name *)
  h_slots : string;             (** slot composition, e.g. ["2xbig-core+2xlittle-core"] *)
  h_policy : Policy.t;
  h_pins : int;                 (** pinned tasks in the cell's constraint spec *)
  h_classes : int;              (** distinct criticality classes *)
  h_makespan : float;
  h_cell : cell;
  h_arch_cost : float;          (** sum of per-slot kind costs *)
}

type hetero_demo = {
  h_bench : string;
  h_rows : hetero_row list;
  h_degenerate_identical : bool;
      (** true iff the typed single-kind ["std4"] platform reproduced the
          historical identical-cores path bit for bit under all five
          policies (makespan, power, temperatures, arch cost) *)
}

val hetero_demo : ?bench:int -> unit -> hetero_demo
(** Deterministic exercise of the heterogeneous platform flow (default
    Bm1): every builtin platform under baseline and thermal-aware
    policies, plus two constrained cells (a task pinned to the LITTLE
    cluster; a three-class criticality partition on the six-core mix),
    all via {!Tats_cosynth.Flow.run_platform} with
    {!Tats_techlib.Catalog.library_for} per-kind WCET columns. The golden
    test byte-compares {!Report.hetero_demo} of this value. *)
