module Benchmarks = Tats_taskgraph.Benchmarks
module Catalog = Tats_techlib.Catalog
module Policy = Tats_sched.Policy
module Metrics = Tats_sched.Metrics
module Flow = Tats_cosynth.Flow
module Stats = Tats_util.Stats
module Pool = Tats_util.Pool

type cell = Metrics.row

type arch = Cosynthesis | Platform

let arch_name = function Cosynthesis -> "co-synthesis" | Platform -> "platform"

let outcome ~arch ~policy ~bench =
  let graph = Benchmarks.load bench in
  match arch with
  | Cosynthesis ->
      Flow.run_cosynthesis ~graph ~lib:(Catalog.default_library ()) ~policy ()
  | Platform -> Flow.run_platform ~graph ~lib:(Catalog.platform_library ()) ~policy ()

let run_one ~arch ~policy ~bench = (outcome ~arch ~policy ~bench).Flow.row

type table1_row = { bench : string; policy : Policy.t; cosynth : cell; platform : cell }

let table1_policies =
  [
    Policy.Baseline;
    Policy.Power_aware Policy.Min_task_power;
    Policy.Power_aware Policy.Min_pe_average_power;
    Policy.Power_aware Policy.Min_task_energy;
  ]

(* Table cells are independent deterministic flows, so each (bench, policy)
   pair is one pool task ([chunk:1] — cells are coarse and few). Inside a
   cell, the nested GA/Monte-Carlo maps degrade to inline execution; cell
   values are pure, so the tables are identical at any pool size. *)
let table1 ?pool () =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let inputs =
    Array.of_list
      (List.concat_map
         (fun bench -> List.map (fun policy -> (bench, policy)) table1_policies)
         [ 0; 1; 2; 3 ])
  in
  let rows =
    Pool.parallel_map ~chunk:1 pool
      (fun (bench, policy) ->
        {
          bench = Benchmarks.descriptors.(bench).Benchmarks.bench_name;
          policy;
          cosynth = run_one ~arch:Cosynthesis ~policy ~bench;
          platform = run_one ~arch:Platform ~policy ~bench;
        })
      inputs
  in
  Array.to_list rows

type versus_row = { bench : string; power : cell; thermal : cell }

let versus ?pool ~arch () =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let inputs =
    Array.of_list
      (List.concat_map
         (fun bench ->
           [
             (bench, Policy.Power_aware Policy.Min_task_energy);
             (bench, Policy.Thermal_aware);
           ])
         [ 0; 1; 2; 3 ])
  in
  let cells =
    Pool.parallel_map ~chunk:1 pool
      (fun (bench, policy) -> run_one ~arch ~policy ~bench)
      inputs
  in
  List.init 4 (fun i ->
      {
        bench = Benchmarks.descriptors.(i).Benchmarks.bench_name;
        power = cells.(2 * i);
        thermal = cells.((2 * i) + 1);
      })

let table2 ?pool () = versus ?pool ~arch:Cosynthesis ()
let table3 ?pool () = versus ?pool ~arch:Platform ()

type reduction = { d_max_temp : float; d_avg_temp : float }

let average_reduction rows =
  let n = float_of_int (List.length rows) in
  let dmax =
    List.fold_left
      (fun acc r -> acc +. (r.power.Metrics.max_temp -. r.thermal.Metrics.max_temp))
      0.0 rows
  in
  let davg =
    List.fold_left
      (fun acc r -> acc +. (r.power.Metrics.avg_temp -. r.thermal.Metrics.avg_temp))
      0.0 rows
  in
  { d_max_temp = dmax /. n; d_avg_temp = davg /. n }

type shape_check = { check : string; holds : bool; detail : string }

let mean_by rows ~policy ~proj =
  let selected = List.filter (fun r -> r.policy = policy) rows in
  Stats.mean (Array.of_list (List.map proj selected))

let shape_checks ~table1 ~table2 ~table3 =
  let avg_temp_of arch (c : cell) =
    ignore arch;
    c.Metrics.avg_temp
  in
  let h3_best arch proj =
    let m p = mean_by table1 ~policy:p ~proj in
    let h3 = m (Policy.Power_aware Policy.Min_task_energy) in
    let h1 = m (Policy.Power_aware Policy.Min_task_power) in
    let h2 = m (Policy.Power_aware Policy.Min_pe_average_power) in
    let base = m Policy.Baseline in
    {
      check = Printf.sprintf "Table1/%s: H3 coolest power heuristic (avg temp)" arch;
      holds = h3 <= h1 +. 1e-9 && h3 <= h2 +. 1e-9 && h3 <= base +. 1e-9;
      detail =
        Printf.sprintf "baseline %.2f, h1 %.2f, h2 %.2f, h3 %.2f °C" base h1 h2 h3;
    }
  in
  let thermal_wins name rows =
    let r = average_reduction rows in
    {
      check = Printf.sprintf "%s: thermal-aware reduces both temperatures" name;
      holds = r.d_max_temp > 0.0 && r.d_avg_temp > 0.0;
      detail =
        Printf.sprintf "avg reduction: %.2f °C max, %.2f °C avg" r.d_max_temp
          r.d_avg_temp;
    }
  in
  let platform_cooler =
    (* The paper's claim compares the thermal-aware rows of Tables 2 and 3:
       the platform thermal ASP balances all PEs and lands cooler than the
       customized architecture. *)
    let mean rows proj = Stats.mean (Array.of_list (List.map proj rows)) in
    let cos_max = mean table2 (fun r -> r.thermal.Metrics.max_temp) in
    let plat_max = mean table3 (fun r -> r.thermal.Metrics.max_temp) in
    let cos_avg = mean table2 (fun r -> avg_temp_of Cosynthesis r.thermal) in
    let plat_avg = mean table3 (fun r -> avg_temp_of Platform r.thermal) in
    {
      check = "Thermal ASP on platform cooler than on customized architecture";
      holds = plat_max < cos_max && plat_avg < cos_avg;
      detail =
        Printf.sprintf
          "max: platform %.2f vs co-synthesis %.2f °C; avg: %.2f vs %.2f °C"
          plat_max cos_max plat_avg cos_avg;
    }
  in
  [
    h3_best "cosynth" (fun r -> r.cosynth.Metrics.avg_temp);
    h3_best "platform" (fun r -> r.platform.Metrics.avg_temp);
    thermal_wins "Table2 (co-synthesis)" table2;
    thermal_wins "Table3 (platform)" table3;
    platform_cooler;
  ]

let workload_balance ~bench =
  List.map
    (fun policy ->
      let o = outcome ~arch:Platform ~policy ~bench in
      (policy, Metrics.utilization_spread o.Flow.schedule))
    Policy.all

type robustness = {
  n_graphs : int;
  wins_max : int;
  wins_avg : int;
  mean_reduction : reduction;
}

let robustness ?(n = 12) ?(seed = 2005) ?(tasks = 30) () =
  if n < 1 || tasks < 2 then invalid_arg "Experiments.robustness: bad parameters";
  let module Generator = Tats_taskgraph.Generator in
  let module Rng = Tats_util.Rng in
  let rng = Rng.create seed in
  let lib = Catalog.platform_library () in
  let wins_max = ref 0 and wins_avg = ref 0 in
  let sum_max = ref 0.0 and sum_avg = ref 0.0 in
  for i = 1 to n do
    let lo, hi = Generator.feasible_edges ~n_tasks:tasks in
    let n_edges = Rng.range rng lo (Stdlib.min hi (2 * tasks)) in
    (* Deadlines with moderate slack: enough for feasibility on 4 PEs,
       loose enough for the thermal trade to exist. *)
    let deadline = float_of_int (Rng.range rng (tasks * 25) (tasks * 45)) in
    let graph =
      Generator.generate
        ~seed:(Rng.int rng 1_000_000)
        ~name:(Printf.sprintf "rand%d" i)
        {
          Generator.default_spec with
          Generator.n_tasks = tasks;
          n_edges;
          deadline;
          n_task_types = Tats_taskgraph.Benchmarks.n_task_types;
        }
    in
    let run policy = (Flow.run_platform ~graph ~lib ~policy ()).Flow.row in
    let power = run (Policy.Power_aware Policy.Min_task_energy) in
    let thermal = run Policy.Thermal_aware in
    let d_max = power.Metrics.max_temp -. thermal.Metrics.max_temp in
    let d_avg = power.Metrics.avg_temp -. thermal.Metrics.avg_temp in
    if d_max > 0.0 then incr wins_max;
    if d_avg > 0.0 then incr wins_avg;
    sum_max := !sum_max +. d_max;
    sum_avg := !sum_avg +. d_avg
  done;
  {
    n_graphs = n;
    wins_max = !wins_max;
    wins_avg = !wins_avg;
    mean_reduction =
      {
        d_max_temp = !sum_max /. float_of_int n;
        d_avg_temp = !sum_avg /. float_of_int n;
      };
  }

type floorplan_study_row = {
  seed : int;
  n_blocks : int;
  area_only_peak : float;
  thermal_aware_peak : float;
  area_overhead : float;
}

let floorplan_study ?(seeds = [ 1; 2; 3; 4 ]) ?(n_blocks = 6) () =
  let module Block = Tats_floorplan.Block in
  let module Placement = Tats_floorplan.Placement in
  let module Ga = Tats_floorplan.Ga in
  let module Hotspot = Tats_thermal.Hotspot in
  let module Rng = Tats_util.Rng in
  List.map
    (fun seed ->
      let rng = Rng.create (1000 + seed) in
      let blocks =
        Array.init n_blocks (fun i ->
            Block.make ~name:(Printf.sprintf "b%d" i)
              ~area:(Rng.uniform rng 6e-6 2.5e-5)
              ())
      in
      (* A skewed power assignment: two hot blocks, the rest lukewarm. *)
      let power =
        Array.init n_blocks (fun i ->
            if i < 2 then Rng.uniform rng 8.0 12.0 else Rng.uniform rng 0.5 2.0)
      in
      let blocks_area = Array.fold_left (fun a b -> a +. b.Block.area) 0.0 blocks in
      let peak placement =
        Hotspot.peak_temperature (Hotspot.create placement) ~power
      in
      let area_only =
        Ga.run ~seed ~blocks ~cost:(Flow.floorplan_cost ~blocks_area) ()
      in
      let thermal_aware =
        Ga.run ~seed ~blocks
          ~cost:(fun p ->
            Flow.floorplan_cost ~blocks_area p
            +. (0.05 *. (peak p -. Tats_thermal.Package.default.Tats_thermal.Package.ambient)))
          ()
      in
      {
        seed;
        n_blocks;
        area_only_peak = peak area_only.Ga.best_placement;
        thermal_aware_peak = peak thermal_aware.Ga.best_placement;
        area_overhead =
          Placement.die_area thermal_aware.Ga.best_placement
          /. Float.max (Placement.die_area area_only.Ga.best_placement) 1e-12;
      })
    seeds

type transient_demo = {
  t_bench : string;
  period_s : float;
  dt_s : float;
  t_periods : int;
  t_steps : int;
  pe_steady : float array;
  pe_transient_peak : float array;
  dtm_makespan : float;
  dtm_peak : float;
  dtm_throttled : float;
}

let transient_demo ?(bench = 0) ?(periods = 25) () =
  let module Replay = Tats_sched.Replay in
  let module Transient = Tats_thermal.Transient in
  let module Dtm = Tats_sched.Dtm in
  let module Hotspot = Tats_thermal.Hotspot in
  let module Schedule = Tats_sched.Schedule in
  let graph = Benchmarks.load bench in
  let lib = Catalog.platform_library () in
  let o = Flow.run_platform ~graph ~lib ~policy:Policy.Thermal_aware () in
  let s = o.Flow.schedule in
  let model = Hotspot.model o.Flow.hotspot in
  let n_pes = Schedule.n_pes s in
  let profile = Replay.of_schedule ~lib s in
  let period_s = Transient.profile_duration profile in
  let dt_s = period_s /. 100.0 in
  let engine = Transient.create (Transient.of_model model) in
  let r =
    Transient.replay engine ~profile
      ~t0:(Transient.initial_ambient model)
      ~dt:dt_s ~periods
  in
  let dtm =
    Dtm.simulate
      ~params:{ Tats_sched.Dtm.default_params with Tats_sched.Dtm.trigger = 70.0 }
      ~lib ~hotspot:o.Flow.hotspot s
  in
  {
    t_bench = Tats_taskgraph.Graph.name graph;
    period_s;
    dt_s;
    t_periods = periods;
    t_steps = r.Transient.steps;
    pe_steady = Array.sub o.Flow.report.Metrics.block_temps 0 n_pes;
    pe_transient_peak = Array.sub r.Transient.last_period_peak 0 n_pes;
    dtm_makespan = dtm.Dtm.makespan;
    dtm_peak = dtm.Dtm.peak_temperature;
    dtm_throttled = dtm.Dtm.throttled_fraction;
  }

type online_row = {
  o_arrivals : string;
  o_policy : string;
  o_events : int;
  o_deferrals : int;
  o_makespan : float;
  o_clair_makespan : float;
  o_makespan_ratio : float;
  o_peak : float;
  o_clair_peak : float;
  o_peak_ratio : float;
}

type online_demo = { o_bench : string; o_seed : int; o_rows : online_row list }

let online_scenarios seed =
  let module Online = Tats_sched.Online in
  [
    (Flow.Release_zero, Online.Mirror Policy.Thermal_aware);
    (Flow.Release_sporadic seed, Online.Mirror Policy.Baseline);
    (Flow.Release_sporadic seed, Online.Mirror Policy.Thermal_aware);
    (Flow.Release_sporadic seed, Online.Reactive Online.default_reactive);
    (* A trigger low enough that the platform is "hot" at decision points:
       this row exercises both migration pressure and cooldown deferrals. *)
    ( Flow.Release_sporadic seed,
      Online.Reactive { Online.default_reactive with Online.trigger = 50.0 } );
    (Flow.Release_trace, Online.Mirror Policy.Thermal_aware);
  ]

let online_demo ?(bench = 0) ?(seed = 1) () =
  let module Online = Tats_sched.Online in
  let module Schedule = Tats_sched.Schedule in
  let graph = Benchmarks.load bench in
  let lib = Catalog.platform_library () in
  let rows =
    List.map
      (fun (arrivals, policy) ->
        let o = Flow.run_online ~arrivals ~graph ~lib ~policy () in
        let s = o.Flow.score in
        {
          o_arrivals = Flow.arrival_source_name arrivals;
          o_policy = Online.policy_name policy;
          o_events = o.Flow.online.Online.stats.Online.events;
          o_deferrals = o.Flow.online.Online.stats.Online.deferrals;
          o_makespan = s.Online.online_makespan;
          o_clair_makespan = s.Online.clairvoyant_makespan;
          o_makespan_ratio = s.Online.makespan_ratio;
          o_peak = s.Online.online_peak;
          o_clair_peak = s.Online.clairvoyant_peak;
          o_peak_ratio = s.Online.peak_ratio;
        })
      (online_scenarios seed)
  in
  { o_bench = Tats_taskgraph.Graph.name graph; o_seed = seed; o_rows = rows }

let campaign_demo () =
  match Tats_campaign.Campaign.builtin "golden" with
  | Some spec -> Tats_campaign.Campaign.collect spec
  | None -> invalid_arg "campaign_demo: builtin golden spec missing"

type hetero_row = {
  h_platform : string;
  h_slots : string;
  h_policy : Policy.t;
  h_pins : int;
  h_classes : int;
  h_makespan : float;
  h_cell : cell;
  h_arch_cost : float;
}

type hetero_demo = {
  h_bench : string;
  h_rows : hetero_row list;
  h_degenerate_identical : bool;
}

(* "2xbig-core+2xlittle-core" — slot composition in slot order. *)
let slot_summary p =
  let module Platform = Tats_techlib.Platform in
  let counts = Hashtbl.create 4 in
  let order = ref [] in
  for slot = 0 to Platform.n_pes p - 1 do
    let name = (Platform.kind_of_slot p slot).Tats_techlib.Pe.kind_name in
    match Hashtbl.find_opt counts name with
    | Some n -> Hashtbl.replace counts name (n + 1)
    | None ->
        Hashtbl.add counts name 1;
        order := name :: !order
  done;
  List.rev !order
  |> List.map (fun name -> Printf.sprintf "%dx%s" (Hashtbl.find counts name) name)
  |> String.concat "+"

let hetero_scenarios () =
  let module C = Tats_sched.Constraints in
  [
    ("std4", Policy.Baseline, C.empty);
    ("std4", Policy.Thermal_aware, C.empty);
    ("biglittle4", Policy.Baseline, C.empty);
    ("biglittle4", Policy.Thermal_aware, C.empty);
    ("mixed6", Policy.Baseline, C.empty);
    ("mixed6", Policy.Thermal_aware, C.empty);
    (* Constrained cells: a task forced onto the LITTLE cluster, and a
       three-class criticality partition on the six-core mix. *)
    ( "biglittle4",
      Policy.Thermal_aware,
      { C.pins = [ (0, C.To_kind 1) ]; isolation = [ (1, 0); (2, 1) ] } );
    ( "mixed6",
      Policy.Baseline,
      {
        C.pins = [ (0, C.To_pe 0); (3, C.To_kind 2) ];
        isolation = [ (1, 0); (2, 1); (4, 2) ];
      } );
  ]

let hetero_demo ?(bench = 0) () =
  let module Schedule = Tats_sched.Schedule in
  let module C = Tats_sched.Constraints in
  let graph = Benchmarks.load bench in
  let rows =
    List.map
      (fun (pname, policy, constraints) ->
        let platform = Option.get (Catalog.platform_named pname) in
        let o =
          Flow.run_platform ~platform ~constraints ~graph
            ~lib:(Catalog.library_for platform) ~policy ()
        in
        {
          h_platform = pname;
          h_slots = slot_summary platform;
          h_policy = policy;
          h_pins = List.length constraints.C.pins;
          h_classes =
            List.length
              (List.sort_uniq compare (List.map snd constraints.C.isolation));
          h_makespan = o.Flow.schedule.Schedule.makespan;
          h_cell = o.Flow.row;
          h_arch_cost = o.Flow.arch_cost;
        })
      (hetero_scenarios ())
  in
  (* The tentpole's anchor: the typed single-kind platform must reproduce
     the historical identical-cores path bit for bit, for every policy. *)
  let degenerate_identical =
    let std4 = Option.get (Catalog.platform_named "std4") in
    let bits = Int64.bits_of_float in
    List.for_all
      (fun policy ->
        let classic =
          Flow.run_platform ~graph ~lib:(Catalog.platform_library ()) ~policy ()
        in
        let typed =
          Flow.run_platform ~platform:std4 ~graph ~lib:(Catalog.library_for std4)
            ~policy ()
        in
        bits classic.Flow.schedule.Schedule.makespan
        = bits typed.Flow.schedule.Schedule.makespan
        && bits classic.Flow.row.Metrics.total_power
           = bits typed.Flow.row.Metrics.total_power
        && bits classic.Flow.row.Metrics.max_temp
           = bits typed.Flow.row.Metrics.max_temp
        && bits classic.Flow.row.Metrics.avg_temp
           = bits typed.Flow.row.Metrics.avg_temp
        && bits classic.Flow.arch_cost = bits typed.Flow.arch_cost)
      Policy.all
  in
  {
    h_bench = Tats_taskgraph.Graph.name graph;
    h_rows = rows;
    h_degenerate_identical = degenerate_identical;
  }
