module Graph = Tats_taskgraph.Graph
module Library = Tats_techlib.Library
module Pe = Tats_techlib.Pe
module Platform = Tats_techlib.Platform
module Constraints = Tats_sched.Constraints
module Block = Tats_floorplan.Block
module Placement = Tats_floorplan.Placement
module Grid = Tats_floorplan.Grid
module Ga = Tats_floorplan.Ga
module Package = Tats_thermal.Package
module Hotspot = Tats_thermal.Hotspot
module Inquiry = Tats_thermal.Inquiry
module Policy = Tats_sched.Policy
module Schedule = Tats_sched.Schedule
module List_sched = Tats_sched.List_sched
module Online = Tats_sched.Online
module Metrics = Tats_sched.Metrics
module Trace = Tats_util.Trace
module Metricsreg = Tats_util.Metricsreg

let m_iterations = Metricsreg.counter "flow.iterations"

type stage = Allocation | Floorplanning | Scheduling | Thermal_extraction

let stage_name = function
  | Allocation -> "allocation"
  | Floorplanning -> "floorplanning"
  | Scheduling -> "scheduling"
  | Thermal_extraction -> "thermal-extraction"

type log_entry = { stage : stage; detail : string }

type outcome = {
  schedule : Schedule.t;
  placement : Placement.t;
  hotspot : Hotspot.t;
  row : Metrics.row;
  report : Metrics.thermal_report;
  arch_cost : float;
  outer_iterations : int;
  inquiry : Tats_thermal.Inquiry.stats;
  log : log_entry list;
}

let inquiry_detail hotspot =
  let s = Hotspot.inquiry_stats hotspot in
  Printf.sprintf
    "%d HotSpot inquiries (%d cache hits; %d factored solves vs %d \
     dense-path equivalents)"
    (Hotspot.inquiries hotspot)
    s.Inquiry.cache_hits s.Inquiry.factored_solves s.Inquiry.dense_solves

let blocks_of_insts insts =
  Array.map
    (fun (i : Pe.inst) ->
      Block.make
        ~name:(Printf.sprintf "PE%d_%s" i.Pe.inst_id i.Pe.kind.Pe.kind_name)
        ~area:i.Pe.kind.Pe.area ())
    insts

let floorplan_cost ?(thermal = fun _ -> 0.0) ~blocks_area placement =
  let area_term = Placement.die_area placement /. blocks_area in
  (* Normalize wirelength by the die diagonal so it is scale-free. *)
  let diag =
    Float.max (Float.hypot placement.Placement.die_w placement.Placement.die_h) 1e-12
  in
  let n = Array.length placement.Placement.rects in
  let pairs = Float.max 1.0 (float_of_int (n * (n - 1) / 2)) in
  let wl_term = Placement.total_wirelength placement /. (diag *. pairs) in
  area_term +. (0.2 *. wl_term) +. thermal placement

let finalize ~leakage ~lib ~hotspot ~arch_cost ~outer ~log schedule placement =
  let report = Metrics.thermal_report ~leakage schedule ~hotspot in
  let row = Metrics.row ~leakage schedule ~lib ~hotspot in
  {
    schedule;
    placement;
    hotspot;
    row;
    report;
    arch_cost;
    outer_iterations = outer;
    inquiry = Hotspot.inquiry_stats hotspot;
    log = List.rev log;
  }

(* The thermal ASP searches for the strongest thermal weight that still
   meets the deadline (see List_sched.run_adaptive) — the paper's "reduce
   the peak temperature ... while meeting real time constraints". The other
   policies run once at their (possibly caller-supplied) weight. *)
let schedule_with_policy ?weights ?constraints ~hotspot ~graph ~lib ~insts
    ~policy () =
  match policy with
  | Policy.Thermal_aware ->
      fst
        (List_sched.run_adaptive ?base_weights:weights ?constraints ~hotspot
           ~graph ~lib ~pes:insts ~policy ())
  | Policy.Power_aware _ ->
      (* Power heuristics never stretch the schedule; their weight is only
         ever capped downward to keep the deadline. *)
      fst
        (List_sched.run_adaptive ?base_weights:weights ?constraints
           ~max_multiplier:1.0 ~hotspot ~graph ~lib ~pes:insts ~policy ())
  | Policy.Baseline ->
      List_sched.run ?weights ?constraints ~hotspot ~graph ~lib ~pes:insts
        ~policy ()

(* The library must have one WCET/WCPC column per platform kind (dense ids
   on both sides, so a length check suffices after Library.check_kinds). *)
let check_platform_lib ~what ~lib p =
  if Array.length (Library.kinds lib) <> Platform.n_kinds p then
    invalid_arg
      (Printf.sprintf "%s: the library must have one kind per platform kind"
         what)

let run_platform ?(n_pes = 4) ?platform ?constraints
    ?(package = Package.default) ?hotspot ?weights ?(leakage = true) ~graph
    ~lib ~policy () =
  (match platform with
  | None ->
      if Array.length (Library.kinds lib) <> 1 then
        invalid_arg "Flow.run_platform: the platform library must have one kind";
      if n_pes < 1 then invalid_arg "Flow.run_platform: need at least one PE"
  | Some p -> check_platform_lib ~what:"Flow.run_platform" ~lib p);
  let n_pes =
    match platform with None -> n_pes | Some p -> Platform.n_pes p
  in
  (match hotspot with
  | Some h when Hotspot.n_blocks h <> n_pes ->
      invalid_arg "Flow.run_platform: hotspot block count must equal n_pes"
  | _ -> ());
  Trace.with_span "flow.platform"
    ~args:
      [ ("pes", Trace.Int n_pes); ("policy", Trace.Str (Policy.name policy)) ]
  @@ fun () ->
  let insts =
    match platform with
    | None -> Pe.instances (List.init n_pes (fun _ -> Library.kind lib 0))
    | Some p -> Platform.instances p
  in
  let log = ref [] in
  let push stage detail = log := { stage; detail } :: !log in
  push Allocation
    (match platform with
    | None -> Printf.sprintf "fixed platform: %d identical PEs" n_pes
    | Some p ->
        Printf.sprintf "typed platform %s: %d PEs, %d kinds" (Platform.name p)
          n_pes (Platform.n_kinds p));
  let placement, hotspot =
    match hotspot with
    | Some h ->
        push Floorplanning "fixed grid floorplan (shared warmed facade)";
        (Hotspot.placement h, h)
    | None ->
        let placement = Grid.layout (blocks_of_insts insts) in
        push Floorplanning "fixed grid floorplan";
        (placement, Hotspot.create ~package placement)
  in
  let schedule =
    schedule_with_policy ?weights ?constraints ~hotspot ~graph ~lib ~insts
      ~policy ()
  in
  push Scheduling
    (Printf.sprintf "policy %s, makespan %.1f / deadline %.0f" (Policy.name policy)
       schedule.Schedule.makespan (Graph.deadline graph));
  push Thermal_extraction (inquiry_detail hotspot);
  let arch_cost =
    match platform with
    | None -> float_of_int n_pes *. (Library.kind lib 0).Pe.cost
    | Some p -> Platform.cost p
  in
  finalize ~leakage ~lib ~hotspot ~arch_cost ~outer:1 ~log:!log schedule placement

type arrival_source = Release_zero | Release_sporadic of int | Release_trace

let arrival_source_name = function
  | Release_zero -> "zero"
  | Release_sporadic _ -> "sporadic"
  | Release_trace -> "trace"

type online_outcome = {
  online : Online.run;
  clairvoyant_schedule : Schedule.t;
  score : Online.score;
  online_hotspot : Hotspot.t;
}

(* The canonical online-scenario assembly: every consumer (CLI, serving
   layer, golden demo, bench) goes through here so their numbers
   bit-compare equal. The platform is the exact run_platform facade;
   [hotspot] is the serving layer's engine-sharing hook, as above. *)
let run_online ?(n_pes = 4) ?platform ?constraints
    ?(package = Package.default) ?hotspot ?weights ?(mean_gap = 25.0) ?periods
    ~arrivals ~graph ~lib ~policy () =
  (match platform with
  | None ->
      if Array.length (Library.kinds lib) <> 1 then
        invalid_arg "Flow.run_online: the platform library must have one kind";
      if n_pes < 1 then invalid_arg "Flow.run_online: need at least one PE"
  | Some p -> check_platform_lib ~what:"Flow.run_online" ~lib p);
  let n_pes =
    match platform with None -> n_pes | Some p -> Platform.n_pes p
  in
  (match hotspot with
  | Some h when Hotspot.n_blocks h <> n_pes ->
      invalid_arg "Flow.run_online: hotspot block count must equal n_pes"
  | _ -> ());
  Trace.with_span "flow.online"
    ~args:
      [
        ("pes", Trace.Int n_pes);
        ("policy", Trace.Str (Online.policy_name policy));
        ("arrivals", Trace.Str (arrival_source_name arrivals));
      ]
  @@ fun () ->
  let insts =
    match platform with
    | None -> Pe.instances (List.init n_pes (fun _ -> Library.kind lib 0))
    | Some p -> Platform.instances p
  in
  let hotspot =
    match hotspot with
    | Some h -> h
    | None -> Hotspot.create ~package (Grid.layout (blocks_of_insts insts))
  in
  let release =
    match arrivals with
    | Release_zero -> Online.zero graph
    | Release_sporadic seed -> Online.sporadic ~mean_gap ~seed graph
    | Release_trace ->
        (* Replay a previously observed execution: the offline baseline
           schedule's start times become the release stream. *)
        Online.of_trace
          (List_sched.run ?constraints ~graph ~lib ~pes:insts
             ~policy:Policy.Baseline ())
  in
  let online =
    Online.run ?weights ?constraints ~hotspot ~arrivals:release ~graph ~lib
      ~pes:insts ~policy ()
  in
  let clairvoyant_schedule =
    Online.clairvoyant ?weights ?constraints ~hotspot ~arrivals:release ~graph
      ~lib ~pes:insts
      ~policy:(Online.base_policy policy)
      ()
  in
  let score =
    Online.score ?periods ~lib ~hotspot ~clairvoyant:clairvoyant_schedule
      online
  in
  { online; clairvoyant_schedule; score; online_hotspot = hotspot }

(* Thermal term of the GA objective: the peak steady-state temperature of
   the placement under a fixed per-block power estimate, scaled to compete
   with the (dimensionless, ~1) area term. *)
let thermal_ga_term ~package ~power placement =
  let hotspot = Hotspot.create ~package placement in
  let peak = Hotspot.peak_temperature hotspot ~power in
  0.01 *. (peak -. package.Package.ambient)

let run_cosynthesis ?(package = Package.default) ?weights ?(leakage = true)
    ?(ga_params = Ga.default_params) ?(ga_seed = 42) ?(min_pes = 1) ?(max_pes = 8)
    ?(max_outer = 3) ?(refine_rounds = 1) ~graph ~lib ~policy () =
  if refine_rounds < 1 then invalid_arg "Flow.run_cosynthesis: refine_rounds < 1";
  if max_outer < 1 then invalid_arg "Flow.run_cosynthesis: max_outer < 1";
  let log = ref [] in
  let push stage detail = log := { stage; detail } :: !log in
  Trace.with_span "flow.cosynthesis"
    ~args:[ ("policy", Trace.Str (Policy.name policy)) ]
  @@ fun () ->
  let rec attempt outer min_pes =
    Metricsreg.incr m_iterations;
    Trace.with_span "flow.iteration" ~args:[ ("outer", Trace.Int outer) ]
    @@ fun () ->
    (* 1. Allocation. All policies share the baseline-ASP-driven selection
       (the paper's identical baseline/h2 rows show the policies shared an
       architecture); the DC policy then differentiates the assignment. *)
    let alloc =
      Trace.with_span "flow.alloc" (fun () ->
          Alloc.run ~max_pes ~min_pes ~graph ~lib ())
    in
    (* Thermal-aware co-synthesis buys one PE of headroom beyond bare
       feasibility: the adaptive thermal ASP converts that slack into lower
       power density — temperature is part of its objective, so trading a
       little cost for it is the point of the flow. *)
    let alloc =
      match policy with
      | Policy.Thermal_aware
        when alloc.Alloc.feasible && Array.length alloc.Alloc.insts < max_pes ->
          Alloc.run ~max_pes
            ~min_pes:(Array.length alloc.Alloc.insts + 1)
            ~graph ~lib ()
      | Policy.Thermal_aware | Policy.Baseline | Policy.Power_aware _ -> alloc
    in
    push Allocation
      (Printf.sprintf "iteration %d: %d PEs (cost %.0f, %d trial schedules%s)"
         outer
         (Array.length alloc.Alloc.insts)
         alloc.Alloc.total_cost alloc.Alloc.asp_runs
         (if alloc.Alloc.feasible then "" else ", infeasible at baseline"));
    let insts = alloc.Alloc.insts in
    let blocks = blocks_of_insts insts in
    let blocks_area = Array.fold_left (fun acc b -> acc +. b.Block.area) 0.0 blocks in
    (* 2 + 3. Floorplanning and scheduling, interleaved: the first
       floorplan is driven by a baseline schedule's power estimate; further
       refinement rounds re-floorplan under the *policy* schedule's powers
       and re-schedule on the improved placement — the Figure-1(a)
       interaction between the ASP and the floorplanner. *)
    let floorplan ~power_estimate ~round =
      Trace.with_span "flow.floorplan" ~args:[ ("round", Trace.Int round) ]
      @@ fun () ->
      let thermal =
        match policy with
        | Policy.Thermal_aware ->
            Some (thermal_ga_term ~package ~power:power_estimate)
        | Policy.Baseline | Policy.Power_aware _ -> None
      in
      let ga =
        if Array.length blocks = 1 then None
        else
          Some
            (Ga.run ~params:ga_params ~seed:ga_seed ~blocks
               ~cost:(floorplan_cost ?thermal ~blocks_area)
               ())
      in
      let placement =
        match ga with Some g -> g.Ga.best_placement | None -> Grid.layout blocks
      in
      push Floorplanning
        (match ga with
        | Some g ->
            Printf.sprintf "round %d: GA%s: cost %.3f after %d generations" round
              (match thermal with Some _ -> " (thermal-aware)" | None -> "")
              g.Ga.best_cost
              (Array.length g.Ga.history)
        | None -> "single block, trivial floorplan");
      placement
    in
    let baseline = List_sched.run ~graph ~lib ~pes:insts ~policy:Policy.Baseline () in
    let rec refine round power_estimate =
      let placement = floorplan ~power_estimate ~round in
      let hotspot = Hotspot.create ~package placement in
      let schedule =
        schedule_with_policy ?weights ~hotspot ~graph ~lib ~insts ~policy ()
      in
      push Scheduling
        (Printf.sprintf "round %d: policy %s, makespan %.1f / deadline %.0f" round
           (Policy.name policy) schedule.Schedule.makespan (Graph.deadline graph));
      if round < refine_rounds then
        refine (round + 1) (Metrics.pe_average_powers schedule)
      else (placement, hotspot, schedule)
    in
    let placement, hotspot, schedule =
      refine 1 (Metrics.pe_average_powers baseline)
    in
    (* 4. Meets requirement? *)
    if
      (not (Schedule.meets_deadline schedule))
      && outer < max_outer
      && Array.length insts < max_pes
    then begin
      (* The outcome attribute lands on the enclosing flow.iteration span:
         why this iteration did not finalize. *)
      Trace.add_attr "outcome" (Trace.Str "retry");
      attempt (outer + 1) (Array.length insts + 1)
    end
    else begin
      Trace.add_attr "outcome"
        (Trace.Str
           (if Schedule.meets_deadline schedule then "deadline-met"
            else "deadline-missed"));
      push Thermal_extraction (inquiry_detail hotspot);
      finalize ~leakage ~lib ~hotspot ~arch_cost:alloc.Alloc.total_cost ~outer
        ~log:!log schedule placement
    end
  in
  attempt 1 min_pes
