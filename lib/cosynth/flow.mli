(** The two end-to-end flows of the paper's Figure 1.

    {b (a) Co-synthesis}: allocation from the heterogeneous catalogue ->
    ASP -> thermal-aware floorplanning (GA) with HotSpot in the loop ->
    temperature extraction; if the policy ASP misses the deadline on the
    allocated architecture, the loop re-enters allocation with one more PE
    ("Meets requirement? No").

    {b (b) Platform-based}: fixed architecture (four identical PEs on a
    grid floorplan); the modified ASP activates HotSpot directly with
    thermal inquiries. *)

module Graph = Tats_taskgraph.Graph
module Library = Tats_techlib.Library
module Pe = Tats_techlib.Pe
module Platform = Tats_techlib.Platform
module Constraints = Tats_sched.Constraints
module Placement = Tats_floorplan.Placement
module Ga = Tats_floorplan.Ga
module Package = Tats_thermal.Package
module Hotspot = Tats_thermal.Hotspot
module Policy = Tats_sched.Policy
module Schedule = Tats_sched.Schedule
module Metrics = Tats_sched.Metrics

type stage = Allocation | Floorplanning | Scheduling | Thermal_extraction

val stage_name : stage -> string

type log_entry = { stage : stage; detail : string }

type outcome = {
  schedule : Schedule.t;
  placement : Placement.t;
  hotspot : Hotspot.t;
  row : Metrics.row;          (** the paper's Total Pow / Max Temp / Avg Temp *)
  report : Metrics.thermal_report;
  arch_cost : float;          (** catalogue cost of the selected PEs *)
  outer_iterations : int;     (** times the "meets requirement?" loop ran *)
  inquiry : Tats_thermal.Inquiry.stats;
      (** inquiry-engine counters of the final hotspot: inquiries served,
          cache hits, fixed-point iterations, factored vs dense-equivalent
          solves, wall time *)
  log : log_entry list;       (** stage trace, in execution order *)
}

val run_platform :
  ?n_pes:int ->
  ?platform:Platform.t ->
  ?constraints:Constraints.spec ->
  ?package:Package.t ->
  ?hotspot:Hotspot.t ->
  ?weights:Policy.weights ->
  ?leakage:bool ->
  graph:Graph.t ->
  lib:Library.t ->
  policy:Policy.t ->
  unit ->
  outcome
(** Figure 1(b). Without [platform], [lib] must contain exactly one kind
    (see {!Tats_techlib.Catalog.platform_library}) and [n_pes] (default 4)
    identical cores are instantiated — the historical path, bit-identical
    to every earlier release.

    With [platform], the typed description fixes the PE count and the
    per-slot kinds ([n_pes] is ignored); [lib] must carry one WCET/WCPC
    column per platform kind (see {!Tats_techlib.Catalog.library_for}),
    the thermal blocks take each slot's kind area (per-kind power
    densities flow into the Steady/Transient models), and the
    architecture cost is the sum of per-slot kind costs. A single-kind
    platform reproduces the historical path's numbers exactly.

    [constraints] (pins, isolation — see {!Tats_sched.Constraints}) is
    forwarded to the scheduler; invalid specs raise
    {!Tats_sched.Constraints.Invalid}, dead-ends
    {!Tats_sched.Constraints.Infeasible}.

    [hotspot], when supplied, must wrap a placement with exactly [n_pes]
    blocks ([Invalid_argument] otherwise); the flow then schedules against
    that facade — and its already-warm inquiry cache — instead of building
    a fresh grid layout, and [package] is ignored. This is the serving
    layer's engine-sharing hook ([Tats_serve.Engines]): cache hits are
    bit-exact copies of fresh solves, so the outcome's numbers are
    identical to a cold run; only the [inquiry] counters (cumulative over
    the facade's lifetime) differ. *)

(** {1 Online scheduling scenarios} *)

type arrival_source =
  | Release_zero  (** everything releases at t = 0 *)
  | Release_sporadic of int
      (** seeded sporadic stream ({!Tats_sched.Online.sporadic}) *)
  | Release_trace
      (** the offline baseline schedule's start times replayed as releases *)

val arrival_source_name : arrival_source -> string
(** ["zero"], ["sporadic"], ["trace"]. *)

type online_outcome = {
  online : Tats_sched.Online.run;
  clairvoyant_schedule : Schedule.t;
  score : Tats_sched.Online.score;
  online_hotspot : Hotspot.t;
}

val run_online :
  ?n_pes:int ->
  ?platform:Platform.t ->
  ?constraints:Constraints.spec ->
  ?package:Package.t ->
  ?hotspot:Hotspot.t ->
  ?weights:Policy.weights ->
  ?mean_gap:float ->
  ?periods:int ->
  arrivals:arrival_source ->
  graph:Graph.t ->
  lib:Library.t ->
  policy:Tats_sched.Online.policy ->
  unit ->
  online_outcome
(** The canonical online streaming scenario on the platform architecture:
    build the {!run_platform} facade (or reuse [hotspot], the serving
    layer's engine-sharing hook — same block-count contract as
    {!run_platform}), derive the arrival stream from [arrivals]
    ([mean_gap] feeds the sporadic generator), run the online event loop,
    run the clairvoyant baseline under the online policy's base DC
    family, and replay-score both ([periods] as in
    {!Tats_sched.Online.score}). [platform] and [constraints] behave as in
    {!run_platform} (typed heterogeneous platforms; pins and isolation
    apply to the online player, the clairvoyant baseline and the
    trace-release pre-run alike). Every consumer — CLI, server, goldens,
    bench — assembles the scenario through this function, so their
    numbers bit-compare equal. *)

val run_cosynthesis :
  ?package:Package.t ->
  ?weights:Policy.weights ->
  ?leakage:bool ->
  ?ga_params:Ga.params ->
  ?ga_seed:int ->
  ?min_pes:int ->
  ?max_pes:int ->
  ?max_outer:int ->
  ?refine_rounds:int ->
  graph:Graph.t ->
  lib:Library.t ->
  policy:Policy.t ->
  unit ->
  outcome
(** Figure 1(a). The floorplanning GA minimizes die area + wirelength for
    the traditional policies and additionally peak temperature (under the
    baseline schedule's PE powers) for [Thermal_aware] — the paper's
    "thermal-aware floorplanning" stage. [min_pes] (default 1) forces a
    larger architecture than bare feasibility needs (design-space
    exploration); [max_outer] (default 3) bounds the requirement loop;
    [refine_rounds] (default 1) iterates the floorplan <-> schedule
    interaction — round 2+ re-floorplans under the policy schedule's own
    PE powers and re-schedules on that placement. *)

val floorplan_cost :
  ?thermal:(Placement.t -> float) -> blocks_area:float -> Placement.t -> float
(** The GA objective: [die_area / blocks_area + 0.2 * normalized wirelength
    + thermal placement] (thermal defaults to [fun _ -> 0.]). Exposed for
    tests and the ablation bench. *)
