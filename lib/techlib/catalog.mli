(** Default PE catalogues used by the experiments.

    Co-synthesis draws from a heterogeneous catalogue (low-power, standard
    and high-performance cores plus a DSP and an accelerator); the
    platform-based architecture uses four identical standard cores, matching
    the paper's "four identical PEs". *)

val heterogeneous : unit -> Pe.kind list
(** Five kinds; the DSP and accelerator are specialized for a subset of the
    default benchmark task types. *)

val platform_kind : unit -> Pe.kind
(** The standard core used (x4) by the platform-based architecture. *)

val platform_instances : int -> Pe.inst array
(** [platform_instances n] — [n] identical standard cores. *)

val default_library : unit -> Library.t
(** The library shared by all paper experiments: heterogeneous catalogue,
    {!Tats_taskgraph.Benchmarks.n_task_types} task types, fixed seed. *)

val platform_library : unit -> Library.t
(** Same task types and seed, restricted to the platform kind (kind_id 0). *)

(** {1 Typed builtin platforms} *)

val builtin_platforms : unit -> Platform.t list
(** The named platforms accepted by the CLI, the server protocol and the
    campaign runner:

    - ["std4"] — four identical standard cores (the degenerate case; its
      library is bit-identical to {!platform_library}).
    - ["biglittle4"] — two big cores (fast, hot) + two LITTLE cores
      (slow, cool), ARM big.LITTLE style.
    - ["mixed6"] — one big, two standard, three LITTLE cores. *)

val platform_named : string -> Platform.t option
(** Look a builtin platform up by name. *)

val platform_names : unit -> string list
(** Names of {!builtin_platforms}, in order. *)

val library_for : Platform.t -> Library.t
(** The technology library for a typed platform: the shared seed and task
    types, with one column per platform kind. For ["std4"] this is
    bit-identical to {!platform_library}. *)
