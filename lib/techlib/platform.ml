(* A typed platform description: which PE kinds exist and which kind sits
   in each PE slot. The degenerate single-kind case is value-identical to
   the historical "n identical cores" arrays built by
   [Catalog.platform_instances], so every consumer that accepts a platform
   reproduces the homogeneous flow bit for bit. *)

type t = { platform_name : string; kinds : Pe.kind array; slots : int array }

let check_kinds kinds =
  if Array.length kinds = 0 then invalid_arg "Platform.make: no kinds";
  Array.iteri
    (fun i (k : Pe.kind) ->
      if k.Pe.kind_id <> i then
        invalid_arg
          (Printf.sprintf
             "Platform.make: kind_ids must be dense and in order (slot %d has \
              id %d)"
             i k.Pe.kind_id))
    kinds

let make ~name ~kinds ~slots =
  let kinds = Array.of_list kinds and slots = Array.of_list slots in
  check_kinds kinds;
  if Array.length slots = 0 then invalid_arg "Platform.make: no PE slots";
  Array.iter
    (fun s ->
      if s < 0 || s >= Array.length kinds then
        invalid_arg
          (Printf.sprintf "Platform.make: slot kind %d out of range" s))
    slots;
  { platform_name = name; kinds; slots }

let homogeneous ~name ~kind ~n_pes =
  if n_pes <= 0 then invalid_arg "Platform.homogeneous: non-positive n_pes";
  make ~name ~kinds:[ kind ] ~slots:(List.init n_pes (fun _ -> 0))

let name t = t.platform_name
let kinds t = t.kinds
let n_pes t = Array.length t.slots
let n_kinds t = Array.length t.kinds
let is_homogeneous t = Array.length t.kinds = 1
let kind_of_slot t i = t.kinds.(t.slots.(i))

let instances t =
  (* Value-identical to [Pe.instances] over the expanded kind list, so the
     single-kind case matches [Catalog.platform_instances n] exactly. *)
  Pe.instances (Array.to_list (Array.map (fun s -> t.kinds.(s)) t.slots))

let cost t =
  Array.fold_left (fun acc s -> acc +. t.kinds.(s).Pe.cost) 0.0 t.slots

let pp ppf t =
  Format.fprintf ppf "%s[%s]" t.platform_name
    (String.concat "," (Array.to_list (Array.map (fun s -> t.kinds.(s).Pe.kind_name) t.slots)))
