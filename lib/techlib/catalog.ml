let mm2 x = x *. 1e-6 (* mm^2 to m^2 *)

(* Specializations reference task types of the default benchmark suite
   (10 types, see Tats_taskgraph.Benchmarks.n_task_types). *)
let heterogeneous () =
  [
    (* The lp-core draws the least power but is so slow that its energy per
       task is *worse* than the std-core's — the gap heuristic 1 falls into
       and heuristic 3 avoids (the paper's conclusion). *)
    Pe.make_kind ~kind_id:0 ~name:"lp-core" ~area:(mm2 9.0) ~cost:80.0
      ~speed:0.4 ~power_scale:3.6 ~idle_power:0.3 ();
    Pe.make_kind ~kind_id:1 ~name:"std-core" ~area:(mm2 16.0) ~cost:100.0
      ~speed:1.0 ~power_scale:8.0 ~idle_power:0.6 ();
    Pe.make_kind ~kind_id:2 ~name:"hp-core" ~area:(mm2 25.0) ~cost:260.0
      ~speed:1.7 ~power_scale:16.0 ~idle_power:1.2 ();
    Pe.make_kind ~kind_id:3 ~name:"dsp" ~area:(mm2 12.0) ~cost:150.0 ~speed:0.9
      ~power_scale:6.0 ~idle_power:0.4
      ~specialization:[ (1, 0.45); (4, 0.4); (7, 0.5) ]
      ();
    Pe.make_kind ~kind_id:4 ~name:"accel" ~area:(mm2 8.0) ~cost:180.0 ~speed:0.5
      ~power_scale:5.0 ~idle_power:0.3
      ~specialization:[ (2, 0.3); (8, 0.35) ]
      ();
  ]

let platform_kind () =
  Pe.make_kind ~kind_id:0 ~name:"std-core" ~area:(mm2 16.0) ~cost:100.0
    ~speed:1.0 ~power_scale:8.0 ~idle_power:0.6 ()

let platform_instances n =
  Pe.instances (List.init n (fun _ -> platform_kind ()))

(* Builtin typed platforms for the heterogeneous platform flow. Kind ids
   are dense per platform (a Platform.make requirement), so the big/LITTLE
   kinds below renumber the catalogue entries they mirror. *)

let big_kind ~kind_id =
  Pe.make_kind ~kind_id ~name:"big-core" ~area:(mm2 25.0) ~cost:260.0
    ~speed:1.7 ~power_scale:16.0 ~idle_power:1.2 ()

let little_kind ~kind_id =
  Pe.make_kind ~kind_id ~name:"little-core" ~area:(mm2 9.0) ~cost:80.0
    ~speed:0.4 ~power_scale:3.6 ~idle_power:0.3 ()

let builtin_platforms () =
  [
    (* The degenerate case: the paper's four identical standard cores as a
       typed platform. Must reproduce Tables 1-3 byte for byte. *)
    Platform.homogeneous ~name:"std4" ~kind:(platform_kind ()) ~n_pes:4;
    (* ARM big.LITTLE-style: two fast/hot cores plus two slow/cool ones. *)
    Platform.make ~name:"biglittle4"
      ~kinds:[ big_kind ~kind_id:0; little_kind ~kind_id:1 ]
      ~slots:[ 0; 0; 1; 1 ];
    (* A wider mix: one big, two standard, three little. *)
    Platform.make ~name:"mixed6"
      ~kinds:
        [
          big_kind ~kind_id:0;
          Pe.make_kind ~kind_id:1 ~name:"std-core" ~area:(mm2 16.0) ~cost:100.0
            ~speed:1.0 ~power_scale:8.0 ~idle_power:0.6 ();
          little_kind ~kind_id:2;
        ]
      ~slots:[ 0; 1; 1; 2; 2; 2 ];
  ]

let platform_named name =
  List.find_opt
    (fun p -> String.equal (Platform.name p) name)
    (builtin_platforms ())

let platform_names () = List.map Platform.name (builtin_platforms ())

let library_seed = 77

let default_library () =
  Library.generate ~seed:library_seed
    ~n_task_types:Tats_taskgraph.Benchmarks.n_task_types
    ~kinds:(heterogeneous ()) ()

let platform_library () =
  Library.generate ~seed:library_seed
    ~n_task_types:Tats_taskgraph.Benchmarks.n_task_types
    ~kinds:[ platform_kind () ] ()

let library_for platform =
  (* Same seed and task types as [platform_library]; for the single
     standard-kind platform the RNG draw sequence is identical, so the
     generated tables are bit-identical to [platform_library ()]. *)
  Library.generate ~seed:library_seed
    ~n_task_types:Tats_taskgraph.Benchmarks.n_task_types
    ~kinds:(Array.to_list (Platform.kinds platform))
    ()
