(** Typed heterogeneous platform descriptions for the platform-based flow.

    The paper's platform flow fixes n identical standard cores; this module
    generalizes it to a typed platform: an array of PE {e kinds} (with
    per-kind speed/power/thermal characteristics, see {!Pe.kind}) plus a
    slot map assigning one kind to each PE position. A single-kind platform
    is value-identical to the historical identical-cores arrays, which is
    the anchor of the differential test battery: scheduling on
    [homogeneous ~kind:(Catalog.platform_kind ()) ~n_pes:4] must reproduce
    the published Tables 1–3 byte for byte. *)

type t = {
  platform_name : string;
  kinds : Pe.kind array;  (** dense, [kinds.(i).kind_id = i] *)
  slots : int array;  (** PE slot [i] hosts kind [kinds.(slots.(i))] *)
}

val make : name:string -> kinds:Pe.kind list -> slots:int list -> t
(** Validates that kind ids are dense and in order and every slot indexes a
    kind; raises [Invalid_argument] otherwise. *)

val homogeneous : name:string -> kind:Pe.kind -> n_pes:int -> t
(** [n_pes] identical slots of [kind] (whose [kind_id] must be 0). *)

val name : t -> string
val kinds : t -> Pe.kind array
val n_pes : t -> int
val n_kinds : t -> int

val is_homogeneous : t -> bool
(** True iff the platform has exactly one kind. *)

val kind_of_slot : t -> int -> Pe.kind

val instances : t -> Pe.inst array
(** One {!Pe.inst} per slot, [inst_id] = slot index. For a single-kind
    platform this is value-identical to {!Catalog.platform_instances}. *)

val cost : t -> float
(** Sum of per-slot kind costs — the platform's architecture cost. *)

val pp : Format.formatter -> t -> unit
