(** LU factorization with partial pivoting, and linear-system solving.

    The thermal model factors its conductance matrix once and back-solves for
    every power inquiry the scheduler makes, so factorization and solving are
    exposed separately.

    The factorization is cache-blocked (panel factorization plus a
    deferred trailing sweep over the flat row-major buffer) and the
    multi-RHS entry points ({!solve_many}, {!unit_solutions}) share each
    LU element across a block of solution columns. All of it preserves
    the scalar operation order of the textbook unblocked kernels, so
    factors and solutions are bit-identical to them on finite inputs —
    the differential suite in [test/test_kernels.ml] asserts exact
    equality, not closeness. *)

type t
(** A factored square matrix. *)

exception Singular
(** Raised when the matrix is (numerically) singular. *)

val factor : Matrix.t -> t
(** [factor a] computes [P*A = L*U]. Raises [Singular] if a zero pivot is
    encountered, and [Invalid_argument] if [a] is not square. *)

val size : t -> int
(** Dimension of the factored system. *)

val solve_factored : t -> float array -> float array
(** [solve_factored lu b] solves [A x = b] in O(n^2). *)

val solve_factored_into : t -> b:float array -> x:float array -> unit
(** Allocation-free [solve_factored]: writes the solution into [x] (length
    [size]). [b] and [x] must be distinct arrays. *)

val unit_solution : t -> int -> float array
(** [unit_solution lu j] solves [A x = e_j] — column [j] of the inverse.
    The thermal inquiry engine extracts one such column per block to build
    its influence matrix. *)

val solve_many : t -> float array array -> float array array
(** [solve_many lu bs] solves [A x_r = bs.(r)] for every right-hand side
    in one blocked pass: each LU element is loaded once per block of 8
    columns instead of once per column. Element-wise identical to calling
    {!solve_factored} on each [bs.(r)] in turn. *)

val unit_solutions : t -> float array array
(** [unit_solutions lu] is [Array.init (size lu) (unit_solution lu)] —
    every column of the inverse — computed by one {!solve_many} pass.
    This is how the inquiry engine now builds its whole influence matrix
    in a single sweep. *)

val solve : Matrix.t -> float array -> float array
(** One-shot [factor] + [solve_factored]. *)

val det : t -> float
(** Determinant, from the factored form. *)

val inverse : Matrix.t -> Matrix.t

val residual : Matrix.t -> float array -> float array -> float
(** [residual a x b] is [max_i |(A x - b)_i|] — a cheap solution check. *)
