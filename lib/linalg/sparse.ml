type t = {
  rows : int;
  cols : int;
  row_ptr : int array; (* length rows+1 *)
  col_idx : int array;
  values : float array;
}

let of_triplets ~rows ~cols triplets =
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= rows || j < 0 || j >= cols then
        invalid_arg "Sparse.of_triplets: index out of range")
    triplets;
  (* Sort by (row, col) then merge duplicates. *)
  let sorted =
    List.sort
      (fun (i1, j1, _) (i2, j2, _) -> if i1 <> i2 then compare i1 i2 else compare j1 j2)
      triplets
  in
  let merged =
    List.fold_left
      (fun acc (i, j, v) ->
        match acc with
        | (i', j', v') :: rest when i = i' && j = j' -> (i, j, v +. v') :: rest
        | _ -> (i, j, v) :: acc)
      [] sorted
    |> List.rev
  in
  let n = List.length merged in
  let row_ptr = Array.make (rows + 1) 0 in
  let col_idx = Array.make n 0 in
  let values = Array.make n 0.0 in
  List.iteri
    (fun k (i, j, v) ->
      row_ptr.(i + 1) <- row_ptr.(i + 1) + 1;
      col_idx.(k) <- j;
      values.(k) <- v)
    merged;
  for i = 1 to rows do
    row_ptr.(i) <- row_ptr.(i) + row_ptr.(i - 1)
  done;
  { rows; cols; row_ptr; col_idx; values }

let rows t = t.rows
let cols t = t.cols
let nnz t = Array.length t.values

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Sparse.get: index out of range";
  let rec scan k =
    if k >= t.row_ptr.(i + 1) then 0.0
    else if t.col_idx.(k) = j then t.values.(k)
    else scan (k + 1)
  in
  scan t.row_ptr.(i)

let mul_vec_into t v dst =
  if Array.length v <> t.cols then invalid_arg "Sparse.mul_vec_into: size mismatch";
  if Array.length dst <> t.rows then
    invalid_arg "Sparse.mul_vec_into: destination size mismatch";
  if v == dst then invalid_arg "Sparse.mul_vec_into: v and dst must not alias";
  let row_ptr = t.row_ptr and col_idx = t.col_idx and values = t.values in
  for i = 0 to t.rows - 1 do
    let lo = Array.unsafe_get row_ptr i in
    let hi = Array.unsafe_get row_ptr (i + 1) in
    let acc = ref 0.0 in
    for k = lo to hi - 1 do
      acc :=
        !acc
        +. Array.unsafe_get values k
           *. Array.unsafe_get v (Array.unsafe_get col_idx k)
    done;
    Array.unsafe_set dst i !acc
  done

let mul_vec t v =
  if Array.length v <> t.cols then invalid_arg "Sparse.mul_vec: size mismatch";
  let dst = Array.make t.rows 0.0 in
  mul_vec_into t v dst;
  dst

let diag t =
  Array.init (Stdlib.min t.rows t.cols) (fun i -> get t i i)

let to_dense t =
  let m = Matrix.create t.rows t.cols in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      Matrix.add_to m i t.col_idx.(k) t.values.(k)
    done
  done;
  m

let is_symmetric ?(eps = 1e-9) t =
  if t.rows <> t.cols then false
  else begin
    let ok = ref true in
    for i = 0 to t.rows - 1 do
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        let j = t.col_idx.(k) in
        if Float.abs (t.values.(k) -. get t j i) > eps then ok := false
      done
    done;
    !ok
  end
