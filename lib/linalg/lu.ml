(* Blocked right-looking LU on the flat row-major buffer.

   The factorization is organized LAPACK-style — factor a narrow panel of
   columns with immediate updates confined to the panel, then apply the
   panel's deferred rank-updates to the trailing matrix in one cache-
   friendly sweep — but every scalar update a(i,j) <- a(i,j) - l(i,k)*u(k,j)
   is still applied one product at a time in ascending k, and pivots are
   chosen from identically-valued columns. The factors (and therefore
   every solve, determinant and influence matrix downstream) are
   bit-identical to the textbook unblocked kernel on finite inputs; the
   blocking only changes *when* each update runs, never its operand
   values or order. test/test_kernels.ml pins this equivalence exactly. *)

type t = {
  lu : Matrix.t; (* L below the diagonal (unit diag implicit), U on and above *)
  perm : int array;
  sign : float;
}

exception Singular

let m_factorizations = Tats_util.Metricsreg.counter "lu.factorizations"
let m_solves = Tats_util.Metricsreg.counter "lu.solves"
let m_batched_solves = Tats_util.Metricsreg.counter "lu.batched_solves"
let m_factor_flops = Tats_util.Metricsreg.counter "lu.factor_flops"
let m_solve_flops = Tats_util.Metricsreg.counter "lu.solve_flops"

(* Panel width: 32 columns of doubles keeps the panel plus one streamed
   trailing row well inside L1 for the sizes the thermal models build. *)
let panel = 32

let factor a =
  if Matrix.rows a <> Matrix.cols a then invalid_arg "Lu.factor: not square";
  Tats_util.Metricsreg.incr m_factorizations;
  let n = Matrix.rows a in
  let lu = Matrix.copy a in
  let d = Matrix.data lu in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  let k0 = ref 0 in
  while !k0 < n do
    let kend = Stdlib.min n (!k0 + panel) in
    (* Panel factorization: columns [k0, kend). Each pivot column has
       already received every update from steps < k (earlier panels via
       the trailing sweep, earlier panel steps below), so the pivot
       choice matches the unblocked algorithm step for step. *)
    for k = !k0 to kend - 1 do
      let pivot_row = ref k in
      let pivot_abs = ref (Float.abs (Array.unsafe_get d ((k * n) + k))) in
      for i = k + 1 to n - 1 do
        let v = Float.abs (Array.unsafe_get d ((i * n) + k)) in
        if v > !pivot_abs then begin
          pivot_row := i;
          pivot_abs := v
        end
      done;
      if !pivot_row <> k then begin
        (* Swap the full rows; deferred trailing updates travel with the
           multipliers stored in the row, so a later sweep applies the
           same operations the unblocked kernel applied before its swap. *)
        let ra = k * n and rb = !pivot_row * n in
        for j = 0 to n - 1 do
          let tmp = Array.unsafe_get d (ra + j) in
          Array.unsafe_set d (ra + j) (Array.unsafe_get d (rb + j));
          Array.unsafe_set d (rb + j) tmp
        done;
        let tmp = perm.(k) in
        perm.(k) <- perm.(!pivot_row);
        perm.(!pivot_row) <- tmp;
        sign := -. !sign
      end;
      let pivot = Array.unsafe_get d ((k * n) + k) in
      if Float.abs pivot < 1e-300 then raise Singular;
      let krow = k * n in
      for i = k + 1 to n - 1 do
        let irow = i * n in
        let factor = Array.unsafe_get d (irow + k) /. pivot in
        Array.unsafe_set d (irow + k) factor;
        for j = k + 1 to kend - 1 do
          Array.unsafe_set d (irow + j)
            (Array.unsafe_get d (irow + j)
            -. (factor *. Array.unsafe_get d (krow + j)))
        done
      done
    done;
    (* Trailing sweep: apply the panel's deferred updates to columns
       >= kend. Rows ascend so that a panel row is fully updated before
       later rows consume it as a U source; k ascends innermost-to-row so
       each element subtracts its products in unblocked order. The panel
       rows stay cache-hot while every trailing row streams through
       exactly once per panel. *)
    if kend < n then
      for i = !k0 + 1 to n - 1 do
        let irow = i * n in
        let klim = Stdlib.min i kend in
        for k = !k0 to klim - 1 do
          let lik = Array.unsafe_get d (irow + k) in
          if lik <> 0.0 then begin
            let krow = k * n in
            let j = ref kend in
            while !j + 3 < n do
              let j0 = !j in
              Array.unsafe_set d (irow + j0)
                (Array.unsafe_get d (irow + j0)
                -. (lik *. Array.unsafe_get d (krow + j0)));
              Array.unsafe_set d (irow + j0 + 1)
                (Array.unsafe_get d (irow + j0 + 1)
                -. (lik *. Array.unsafe_get d (krow + j0 + 1)));
              Array.unsafe_set d (irow + j0 + 2)
                (Array.unsafe_get d (irow + j0 + 2)
                -. (lik *. Array.unsafe_get d (krow + j0 + 2)));
              Array.unsafe_set d (irow + j0 + 3)
                (Array.unsafe_get d (irow + j0 + 3)
                -. (lik *. Array.unsafe_get d (krow + j0 + 3)));
              j := j0 + 4
            done;
            for j = !j to n - 1 do
              Array.unsafe_set d (irow + j)
                (Array.unsafe_get d (irow + j)
                -. (lik *. Array.unsafe_get d (krow + j)))
            done
          end
        done
      done;
    k0 := kend
  done;
  Tats_util.Metricsreg.add m_factor_flops (2 * n * n * n / 3);
  { lu; perm; sign = !sign }

let size { lu; _ } = Matrix.rows lu

let solve_factored_into { lu; perm; _ } ~b ~x =
  let n = Matrix.rows lu in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Lu.solve_factored_into: size mismatch";
  if b == x then invalid_arg "Lu.solve_factored_into: b and x must not alias";
  Tats_util.Metricsreg.incr m_solves;
  let d = Matrix.data lu in
  for i = 0 to n - 1 do
    Array.unsafe_set x i (Array.unsafe_get b (Array.unsafe_get perm i))
  done;
  (* Forward substitution with unit-diagonal L; a single sequential
     accumulator keeps the subtraction order of the naive loop. *)
  for i = 1 to n - 1 do
    let irow = i * n in
    let acc = ref (Array.unsafe_get x i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Array.unsafe_get d (irow + j) *. Array.unsafe_get x j)
    done;
    Array.unsafe_set x i !acc
  done;
  (* Back substitution with U. *)
  for i = n - 1 downto 0 do
    let irow = i * n in
    let acc = ref (Array.unsafe_get x i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Array.unsafe_get d (irow + j) *. Array.unsafe_get x j)
    done;
    Array.unsafe_set x i (!acc /. Array.unsafe_get d (irow + i))
  done;
  Tats_util.Metricsreg.add m_solve_flops (2 * n * n)

let solve_factored f b =
  let x = Array.make (size f) 0.0 in
  solve_factored_into f ~b ~x;
  x

(* Width of one RHS block in the batched solve: 8 solution columns
   interleaved element-major in one scratch buffer, so the inner loops
   touch one contiguous 64-byte stripe per (i, j) while each LU element
   is loaded once for all 8 columns instead of once per column. *)
let rhs_block = 8

let solve_many { lu; perm; _ } bs =
  let n = Matrix.rows lu in
  Array.iter
    (fun b ->
      if Array.length b <> n then invalid_arg "Lu.solve_many: size mismatch")
    bs;
  let nrhs = Array.length bs in
  Tats_util.Metricsreg.incr m_batched_solves;
  Tats_util.Metricsreg.add m_solves nrhs;
  let d = Matrix.data lu in
  let xs = Array.init nrhs (fun _ -> Array.make n 0.0) in
  (* scratch.(i * w + r) holds x_r(i) for the current block of w
     right-hand sides. Per column the substitutions below perform the
     exact operation sequence of [solve_factored_into] (i and j ascend,
     one subtraction per product), so each solution is element-wise
     identical to a loop of single solves — the batching only shares the
     LU loads across columns. *)
  let scratch = Array.make (n * rhs_block) 0.0 in
  let r0 = ref 0 in
  while !r0 < nrhs do
    let w = Stdlib.min rhs_block (nrhs - !r0) in
    for r = 0 to w - 1 do
      let b = Array.unsafe_get bs (!r0 + r) in
      for i = 0 to n - 1 do
        Array.unsafe_set scratch ((i * rhs_block) + r)
          (Array.unsafe_get b (Array.unsafe_get perm i))
      done
    done;
    for i = 1 to n - 1 do
      let irow = i * n and ix = i * rhs_block in
      for j = 0 to i - 1 do
        let lij = Array.unsafe_get d (irow + j) in
        if lij <> 0.0 then begin
          let jx = j * rhs_block in
          for r = 0 to w - 1 do
            Array.unsafe_set scratch (ix + r)
              (Array.unsafe_get scratch (ix + r)
              -. (lij *. Array.unsafe_get scratch (jx + r)))
          done
        end
      done
    done;
    for i = n - 1 downto 0 do
      let irow = i * n and ix = i * rhs_block in
      for j = i + 1 to n - 1 do
        let uij = Array.unsafe_get d (irow + j) in
        if uij <> 0.0 then begin
          let jx = j * rhs_block in
          for r = 0 to w - 1 do
            Array.unsafe_set scratch (ix + r)
              (Array.unsafe_get scratch (ix + r)
              -. (uij *. Array.unsafe_get scratch (jx + r)))
          done
        end
      done;
      let uii = Array.unsafe_get d (irow + i) in
      for r = 0 to w - 1 do
        Array.unsafe_set scratch (ix + r)
          (Array.unsafe_get scratch (ix + r) /. uii)
      done
    done;
    for r = 0 to w - 1 do
      let x = Array.unsafe_get xs (!r0 + r) in
      for i = 0 to n - 1 do
        Array.unsafe_set x i (Array.unsafe_get scratch ((i * rhs_block) + r))
      done
    done;
    r0 := !r0 + w
  done;
  Tats_util.Metricsreg.add m_solve_flops (2 * n * n * nrhs);
  xs

let unit_solution f j =
  let n = size f in
  if j < 0 || j >= n then invalid_arg "Lu.unit_solution: index out of range";
  let e = Array.make n 0.0 in
  e.(j) <- 1.0;
  solve_factored f e

let unit_solutions f =
  let n = size f in
  solve_many f
    (Array.init n (fun j ->
         let e = Array.make n 0.0 in
         e.(j) <- 1.0;
         e))

let solve a b = solve_factored (factor a) b

let det { lu; sign; _ } =
  let n = Matrix.rows lu in
  let d = ref sign in
  for i = 0 to n - 1 do
    d := !d *. Matrix.get lu i i
  done;
  !d

let inverse a =
  let n = Matrix.rows a in
  let cols = unit_solutions (factor a) in
  Matrix.init n n (fun i j -> cols.(j).(i))

let residual a x b =
  let ax = Matrix.mul_vec a x in
  let worst = ref 0.0 in
  Array.iteri (fun i v -> worst := Float.max !worst (Float.abs (v -. b.(i)))) ax;
  !worst
