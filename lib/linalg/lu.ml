type t = {
  lu : Matrix.t; (* L below the diagonal (unit diag implicit), U on and above *)
  perm : int array;
  sign : float;
}

exception Singular

let m_factorizations = Tats_util.Metricsreg.counter "lu.factorizations"
let m_solves = Tats_util.Metricsreg.counter "lu.solves"

let factor a =
  if Matrix.rows a <> Matrix.cols a then invalid_arg "Lu.factor: not square";
  Tats_util.Metricsreg.incr m_factorizations;
  let n = Matrix.rows a in
  let lu = Matrix.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* Partial pivoting: pick the largest magnitude in column k. *)
    let pivot_row = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (Matrix.get lu i k) > Float.abs (Matrix.get lu !pivot_row k)
      then pivot_row := i
    done;
    if !pivot_row <> k then begin
      for j = 0 to n - 1 do
        let tmp = Matrix.get lu k j in
        Matrix.set lu k j (Matrix.get lu !pivot_row j);
        Matrix.set lu !pivot_row j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot_row);
      perm.(!pivot_row) <- tmp;
      sign := -. !sign
    end;
    let pivot = Matrix.get lu k k in
    if Float.abs pivot < 1e-300 then raise Singular;
    for i = k + 1 to n - 1 do
      let factor = Matrix.get lu i k /. pivot in
      Matrix.set lu i k factor;
      for j = k + 1 to n - 1 do
        Matrix.set lu i j (Matrix.get lu i j -. (factor *. Matrix.get lu k j))
      done
    done
  done;
  { lu; perm; sign = !sign }

let size { lu; _ } = Matrix.rows lu

let solve_factored_into { lu; perm; _ } ~b ~x =
  let n = Matrix.rows lu in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Lu.solve_factored_into: size mismatch";
  if b == x then invalid_arg "Lu.solve_factored_into: b and x must not alias";
  Tats_util.Metricsreg.incr m_solves;
  for i = 0 to n - 1 do
    x.(i) <- b.(perm.(i))
  done;
  (* Forward substitution with unit-diagonal L. *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (Matrix.get lu i j *. x.(j))
    done
  done;
  (* Back substitution with U. *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (Matrix.get lu i j *. x.(j))
    done;
    x.(i) <- x.(i) /. Matrix.get lu i i
  done

let solve_factored f b =
  let x = Array.make (size f) 0.0 in
  solve_factored_into f ~b ~x;
  x

let unit_solution f j =
  let n = size f in
  if j < 0 || j >= n then invalid_arg "Lu.unit_solution: index out of range";
  let e = Array.make n 0.0 in
  e.(j) <- 1.0;
  solve_factored f e

let solve a b = solve_factored (factor a) b

let det { lu; sign; _ } =
  let n = Matrix.rows lu in
  let d = ref sign in
  for i = 0 to n - 1 do
    d := !d *. Matrix.get lu i i
  done;
  !d

let inverse a =
  let n = Matrix.rows a in
  let f = factor a in
  let inv = Matrix.create n n in
  for j = 0 to n - 1 do
    let e = Array.make n 0.0 in
    e.(j) <- 1.0;
    let col = solve_factored f e in
    for i = 0 to n - 1 do
      Matrix.set inv i j col.(i)
    done
  done;
  inv

let residual a x b =
  let ax = Matrix.mul_vec a x in
  let worst = ref 0.0 in
  Array.iteri (fun i v -> worst := Float.max !worst (Float.abs (v -. b.(i)))) ax;
  !worst
