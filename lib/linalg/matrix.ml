(* Flat row-major storage: one [float array], element (i, j) at
   [i * cols + j]. The public accessors are bounds-checked; the kernels
   below (and LU/CG in this library) index the flat buffer with
   [Array.unsafe_get]/[unsafe_set] after validating shapes once up
   front. *)

type t = { rows : int; cols : int; data : float array }

let m_mul_flops = Tats_util.Metricsreg.counter "matrix.mul_flops"

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then create 0 0
  else begin
    let cols = Array.length a.(0) in
    Array.iter
      (fun row ->
        if Array.length row <> cols then
          invalid_arg "Matrix.of_arrays: ragged input")
      a;
    init rows cols (fun i j -> a.(i).(j))
  end

let rows m = m.rows
let cols m = m.cols
let data m = m.data

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Matrix.get: index out of range";
  Array.unsafe_get m.data ((i * m.cols) + j)

let set m i j x =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Matrix.set: index out of range";
  Array.unsafe_set m.data ((i * m.cols) + j) x

let add_to m i j x =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Matrix.add_to: index out of range";
  let k = (i * m.cols) + j in
  Array.unsafe_set m.data k (Array.unsafe_get m.data k +. x)

let to_arrays m =
  Array.init m.rows (fun i -> Array.sub m.data (i * m.cols) m.cols)

let col m j =
  if j < 0 || j >= m.cols then invalid_arg "Matrix.col: column out of range";
  Array.init m.rows (fun i -> Array.unsafe_get m.data ((i * m.cols) + j))

let copy m = { m with data = Array.copy m.data }

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let map2 f a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Matrix: dimension mismatch";
  { a with data = Array.init (Array.length a.data) (fun k -> f a.data.(k) b.data.(k)) }

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let scale s m = { m with data = Array.map (fun x -> s *. x) m.data }

(* Cache tile for [mul]: 48 x 48 doubles per operand tile (~18 KB) keeps
   an A tile and the hot B rows resident in L1/L2 together. *)
let tile = 48

(* Tiled i/k product with the scalar update order of the classic ikj
   loop: every c(i,j) accumulates its a(i,k)*b(k,j) terms one at a time
   in ascending k (tiles ascend, k within a tile ascends), so the result
   is bit-identical to the untiled kernel on finite inputs — tiling and
   the 4-way unrolled j loop only reorder independent elements. *)
let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let m = a.rows and kn = a.cols and n = b.cols in
  let c = create m n in
  let ad = a.data and bd = b.data and cd = c.data in
  let i0 = ref 0 in
  while !i0 < m do
    let ihi = Stdlib.min m (!i0 + tile) - 1 in
    let k0 = ref 0 in
    while !k0 < kn do
      let khi = Stdlib.min kn (!k0 + tile) - 1 in
      for i = !i0 to ihi do
        let arow = i * kn and crow = i * n in
        for k = !k0 to khi do
          let aik = Array.unsafe_get ad (arow + k) in
          if aik <> 0.0 then begin
            let brow = k * n in
            let j = ref 0 in
            while !j + 3 < n do
              let j0 = !j in
              Array.unsafe_set cd (crow + j0)
                (Array.unsafe_get cd (crow + j0)
                +. (aik *. Array.unsafe_get bd (brow + j0)));
              Array.unsafe_set cd (crow + j0 + 1)
                (Array.unsafe_get cd (crow + j0 + 1)
                +. (aik *. Array.unsafe_get bd (brow + j0 + 1)));
              Array.unsafe_set cd (crow + j0 + 2)
                (Array.unsafe_get cd (crow + j0 + 2)
                +. (aik *. Array.unsafe_get bd (brow + j0 + 2)));
              Array.unsafe_set cd (crow + j0 + 3)
                (Array.unsafe_get cd (crow + j0 + 3)
                +. (aik *. Array.unsafe_get bd (brow + j0 + 3)));
              j := j0 + 4
            done;
            for j = !j to n - 1 do
              Array.unsafe_set cd (crow + j)
                (Array.unsafe_get cd (crow + j)
                +. (aik *. Array.unsafe_get bd (brow + j)))
            done
          end
        done
      done;
      k0 := !k0 + tile
    done;
    i0 := !i0 + tile
  done;
  Tats_util.Metricsreg.add m_mul_flops (2 * m * n * kn);
  c

let mul_vec m v =
  if m.cols <> Array.length v then invalid_arg "Matrix.mul_vec: dimension mismatch";
  let d = m.data and n = m.cols in
  Array.init m.rows (fun i ->
      let row = i * n in
      let acc = ref 0.0 in
      for j = 0 to n - 1 do
        acc := !acc +. (Array.unsafe_get d (row + j) *. Array.unsafe_get v j)
      done;
      !acc)

let frobenius m = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Matrix.max_abs_diff: dimension mismatch";
  let worst = ref 0.0 in
  Array.iteri
    (fun k x -> worst := Float.max !worst (Float.abs (x -. b.data.(k))))
    a.data;
  !worst

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "@[<h>";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%10.4g" (get m i j)
    done;
    Format.fprintf ppf "@]";
    if i < m.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
