type t = { rows : int; cols : int; data : float array }

let create rows cols =
  assert (rows >= 0 && cols >= 0);
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then create 0 0
  else begin
    let cols = Array.length a.(0) in
    Array.iter
      (fun row ->
        if Array.length row <> cols then
          invalid_arg "Matrix.of_arrays: ragged input")
      a;
    init rows cols (fun i j -> a.(i).(j))
  end

let rows m = m.rows
let cols m = m.cols
let get m i j = m.data.((i * m.cols) + j)
let set m i j x = m.data.((i * m.cols) + j) <- x
let add_to m i j x = m.data.((i * m.cols) + j) <- m.data.((i * m.cols) + j) +. x

let to_arrays m = Array.init m.rows (fun i -> Array.init m.cols (get m i))

let col m j =
  if j < 0 || j >= m.cols then invalid_arg "Matrix.col: column out of range";
  Array.init m.rows (fun i -> get m i j)

let copy m = { m with data = Array.copy m.data }

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let map2 f a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Matrix: dimension mismatch";
  { a with data = Array.init (Array.length a.data) (fun k -> f a.data.(k) b.data.(k)) }

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let scale s m = { m with data = Array.map (fun x -> s *. x) m.data }

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let c = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          add_to c i j (aik *. get b k j)
        done
    done
  done;
  c

let mul_vec m v =
  if m.cols <> Array.length v then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (get m i j *. v.(j))
      done;
      !acc)

let frobenius m = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Matrix.max_abs_diff: dimension mismatch";
  let worst = ref 0.0 in
  Array.iteri
    (fun k x -> worst := Float.max !worst (Float.abs (x -. b.data.(k))))
    a.data;
  !worst

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "@[<h>";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%10.4g" (get m i j)
    done;
    Format.fprintf ppf "@]";
    if i < m.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
