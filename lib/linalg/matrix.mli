(** Dense row-major float matrices on flat contiguous storage.

    Sized for the compact thermal model: networks of a few tens of nodes,
    where a dense LU factorization is both simplest and fastest. Element
    (i, j) lives at index [i * cols + j] of a single [float array]; the
    accessors here are bounds-checked, while the kernels in this library
    (tiled {!mul}, the blocked LU, the fused CG primitives) run unsafe
    indexed loops over {!data} after validating shapes once. *)

type t

val create : int -> int -> t
(** [create rows cols] is a zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
val identity : int -> t
val of_arrays : float array array -> t
(** Copies a rectangular array-of-rows. Raises [Invalid_argument] on ragged
    input. *)

val to_arrays : t -> float array array

val col : t -> int -> float array
(** [col m j] copies column [j] out as a vector. Raises [Invalid_argument]
    when [j] is out of range. *)

val rows : t -> int
val cols : t -> int

val data : t -> float array
(** The underlying flat row-major buffer, shared (not a copy): element
    (i, j) is [ (data m).(i * cols m + j) ]. For kernel code that needs
    raw indexed access after its own shape validation — mutating it
    mutates the matrix. *)

val get : t -> int -> int -> float
(** Bounds-checked element read. Raises [Invalid_argument] out of range. *)

val set : t -> int -> int -> float -> unit
(** Bounds-checked element write. Raises [Invalid_argument] out of range. *)

val add_to : t -> int -> int -> float -> unit
(** [add_to m i j x] is [set m i j (get m i j +. x)]. *)

val copy : t -> t
val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t
(** Matrix product — cache-tiled over 48x48 blocks with an unrolled
    contiguous inner loop, but with the scalar accumulation order of the
    classic ikj triple loop, so results are bit-identical to the naive
    kernel on finite inputs. Raises [Invalid_argument] on dimension
    mismatch. *)

val mul_vec : t -> float array -> float array
(** Matrix-vector product. *)

val frobenius : t -> float
(** Frobenius norm. *)

val max_abs_diff : t -> t -> float
(** Largest entrywise absolute difference (for approximate equality). *)

val pp : Format.formatter -> t -> unit
