(** Conjugate-gradient solver for symmetric positive-definite sparse systems,
    with optional Jacobi (diagonal) preconditioning.

    Thermal conductance matrices are SPD by construction, which makes CG the
    natural solver for the grid-mode thermal model. *)

type stats = { iterations : int; residual_norm : float }

type workspace
(** Preallocated iteration buffers (residual, preconditioned residual,
    search direction, spmv destination, inverse diagonal). With a
    workspace supplied, {!solve} allocates only the solution vector. A
    workspace must not be shared by concurrent solves. *)

val workspace : int -> workspace
(** [workspace n] allocates buffers for [n]-dimensional systems. *)

val solve :
  ?workspace:workspace ->
  ?x0:float array ->
  ?tol:float ->
  ?max_iter:int ->
  ?jacobi:bool ->
  Sparse.t ->
  float array ->
  float array * stats
(** [solve a b] returns [(x, stats)] with [||A x - b|| <= tol * ||b||] when
    converged. [tol] defaults to [1e-10], [max_iter] to [10 * n], [jacobi] to
    [true]. [workspace] (of size [Sparse.rows a]) makes the iteration
    allocation-free; omitted, a fresh one is allocated per call. Raises
    [Failure] if the iteration fails to converge, [Invalid_argument] on a
    size mismatch (including the workspace). *)
