(* Preconditioned conjugate gradient with fused, 4-way-unrolled vector
   primitives and a reusable workspace: after setup the iteration loop
   allocates nothing — the spmv writes into a work buffer
   (Sparse.mul_vec_into), the x/r updates share one fused pass, and the
   preconditioner application is fused with the r·z reduction. The
   unrolled reductions carry four partial sums, which reorders the
   additions relative to a sequential dot; CG is a tolerance-terminated
   iteration, so callers get answers within [tol] either way (the grid
   thermal model's consumers all compare against physical tolerances,
   not bit patterns). *)

type stats = { iterations : int; residual_norm : float }

let m_solves = Tats_util.Metricsreg.counter "cg.solves"
let m_flops = Tats_util.Metricsreg.counter "cg.flops"
let h_iterations = Tats_util.Metricsreg.histogram "cg.iterations"

type workspace = {
  ws_n : int;
  r : float array;
  z : float array;
  p : float array;
  ap : float array;
  inv_diag : float array;
}

let workspace n =
  if n < 0 then invalid_arg "Cg.workspace: negative size";
  {
    ws_n = n;
    r = Array.make n 0.0;
    z = Array.make n 0.0;
    p = Array.make n 0.0;
    ap = Array.make n 0.0;
    inv_diag = Array.make n 1.0;
  }

(* 4-way unrolled dot product with four independent accumulators. *)
let dot n a b =
  let s0 = ref 0.0 and s1 = ref 0.0 and s2 = ref 0.0 and s3 = ref 0.0 in
  let i = ref 0 in
  while !i + 3 < n do
    let i0 = !i in
    s0 := !s0 +. (Array.unsafe_get a i0 *. Array.unsafe_get b i0);
    s1 := !s1 +. (Array.unsafe_get a (i0 + 1) *. Array.unsafe_get b (i0 + 1));
    s2 := !s2 +. (Array.unsafe_get a (i0 + 2) *. Array.unsafe_get b (i0 + 2));
    s3 := !s3 +. (Array.unsafe_get a (i0 + 3) *. Array.unsafe_get b (i0 + 3));
    i := i0 + 4
  done;
  for k = !i to n - 1 do
    s0 := !s0 +. (Array.unsafe_get a k *. Array.unsafe_get b k)
  done;
  !s0 +. !s1 +. !s2 +. !s3

(* y <- y + alpha * x, unrolled. *)
let axpy n alpha x y =
  let i = ref 0 in
  while !i + 3 < n do
    let i0 = !i in
    Array.unsafe_set y i0
      (Array.unsafe_get y i0 +. (alpha *. Array.unsafe_get x i0));
    Array.unsafe_set y (i0 + 1)
      (Array.unsafe_get y (i0 + 1) +. (alpha *. Array.unsafe_get x (i0 + 1)));
    Array.unsafe_set y (i0 + 2)
      (Array.unsafe_get y (i0 + 2) +. (alpha *. Array.unsafe_get x (i0 + 2)));
    Array.unsafe_set y (i0 + 3)
      (Array.unsafe_get y (i0 + 3) +. (alpha *. Array.unsafe_get x (i0 + 3)));
    i := i0 + 4
  done;
  for k = !i to n - 1 do
    Array.unsafe_set y k (Array.unsafe_get y k +. (alpha *. Array.unsafe_get x k))
  done

(* Fused step update: x += alpha*p and r -= alpha*ap in one pass. *)
let update_x_r n alpha p ap x r =
  let i = ref 0 in
  while !i + 3 < n do
    let i0 = !i in
    Array.unsafe_set x i0
      (Array.unsafe_get x i0 +. (alpha *. Array.unsafe_get p i0));
    Array.unsafe_set r i0
      (Array.unsafe_get r i0 -. (alpha *. Array.unsafe_get ap i0));
    Array.unsafe_set x (i0 + 1)
      (Array.unsafe_get x (i0 + 1) +. (alpha *. Array.unsafe_get p (i0 + 1)));
    Array.unsafe_set r (i0 + 1)
      (Array.unsafe_get r (i0 + 1) -. (alpha *. Array.unsafe_get ap (i0 + 1)));
    Array.unsafe_set x (i0 + 2)
      (Array.unsafe_get x (i0 + 2) +. (alpha *. Array.unsafe_get p (i0 + 2)));
    Array.unsafe_set r (i0 + 2)
      (Array.unsafe_get r (i0 + 2) -. (alpha *. Array.unsafe_get ap (i0 + 2)));
    Array.unsafe_set x (i0 + 3)
      (Array.unsafe_get x (i0 + 3) +. (alpha *. Array.unsafe_get p (i0 + 3)));
    Array.unsafe_set r (i0 + 3)
      (Array.unsafe_get r (i0 + 3) -. (alpha *. Array.unsafe_get ap (i0 + 3)));
    i := i0 + 4
  done;
  for k = !i to n - 1 do
    Array.unsafe_set x k (Array.unsafe_get x k +. (alpha *. Array.unsafe_get p k));
    Array.unsafe_set r k (Array.unsafe_get r k -. (alpha *. Array.unsafe_get ap k))
  done

(* Fused preconditioner + reduction: z <- inv_diag .* r, returning r.z. *)
let precondition_dot n inv_diag r z =
  let s0 = ref 0.0 and s1 = ref 0.0 and s2 = ref 0.0 and s3 = ref 0.0 in
  let i = ref 0 in
  while !i + 3 < n do
    let i0 = !i in
    let z0 = Array.unsafe_get inv_diag i0 *. Array.unsafe_get r i0 in
    let z1 = Array.unsafe_get inv_diag (i0 + 1) *. Array.unsafe_get r (i0 + 1) in
    let z2 = Array.unsafe_get inv_diag (i0 + 2) *. Array.unsafe_get r (i0 + 2) in
    let z3 = Array.unsafe_get inv_diag (i0 + 3) *. Array.unsafe_get r (i0 + 3) in
    Array.unsafe_set z i0 z0;
    Array.unsafe_set z (i0 + 1) z1;
    Array.unsafe_set z (i0 + 2) z2;
    Array.unsafe_set z (i0 + 3) z3;
    s0 := !s0 +. (Array.unsafe_get r i0 *. z0);
    s1 := !s1 +. (Array.unsafe_get r (i0 + 1) *. z1);
    s2 := !s2 +. (Array.unsafe_get r (i0 + 2) *. z2);
    s3 := !s3 +. (Array.unsafe_get r (i0 + 3) *. z3);
    i := i0 + 4
  done;
  for k = !i to n - 1 do
    let zk = Array.unsafe_get inv_diag k *. Array.unsafe_get r k in
    Array.unsafe_set z k zk;
    s0 := !s0 +. (Array.unsafe_get r k *. zk)
  done;
  !s0 +. !s1 +. !s2 +. !s3

(* p <- z + beta * p, unrolled. *)
let update_p n beta z p =
  let i = ref 0 in
  while !i + 3 < n do
    let i0 = !i in
    Array.unsafe_set p i0
      (Array.unsafe_get z i0 +. (beta *. Array.unsafe_get p i0));
    Array.unsafe_set p (i0 + 1)
      (Array.unsafe_get z (i0 + 1) +. (beta *. Array.unsafe_get p (i0 + 1)));
    Array.unsafe_set p (i0 + 2)
      (Array.unsafe_get z (i0 + 2) +. (beta *. Array.unsafe_get p (i0 + 2)));
    Array.unsafe_set p (i0 + 3)
      (Array.unsafe_get z (i0 + 3) +. (beta *. Array.unsafe_get p (i0 + 3)));
    i := i0 + 4
  done;
  for k = !i to n - 1 do
    Array.unsafe_set p k (Array.unsafe_get z k +. (beta *. Array.unsafe_get p k))
  done

let solve ?workspace:ws ?x0 ?(tol = 1e-10) ?max_iter ?(jacobi = true) a b =
  let n = Sparse.rows a in
  if Sparse.cols a <> n then invalid_arg "Cg.solve: matrix not square";
  if Array.length b <> n then invalid_arg "Cg.solve: size mismatch";
  let max_iter = match max_iter with Some m -> m | None -> 10 * Stdlib.max n 1 in
  let ws =
    match ws with
    | Some w ->
        if w.ws_n <> n then invalid_arg "Cg.solve: workspace size mismatch";
        w
    | None -> workspace n
  in
  let x = match x0 with Some v -> Array.copy v | None -> Array.make n 0.0 in
  let r = ws.r and z = ws.z and p = ws.p and ap = ws.ap in
  let inv_diag = ws.inv_diag in
  if jacobi then begin
    let diag = Sparse.diag a in
    for i = 0 to n - 1 do
      let d = diag.(i) in
      inv_diag.(i) <- (if Float.abs d > 0.0 then 1.0 /. d else 1.0)
    done
  end
  else Array.fill inv_diag 0 n 1.0;
  Array.blit b 0 r 0 n;
  Sparse.mul_vec_into a x ap;
  axpy n (-1.0) ap r;
  let rz = ref (precondition_dot n inv_diag r z) in
  Array.blit z 0 p 0 n;
  let b_norm = Float.max (sqrt (dot n b b)) 1e-300 in
  let rec loop k =
    let res = sqrt (dot n r r) in
    if res <= tol *. b_norm then { iterations = k; residual_norm = res }
    else if k >= max_iter then
      failwith
        (Printf.sprintf "Cg.solve: no convergence after %d iterations (residual %g)"
           k res)
    else begin
      Sparse.mul_vec_into a p ap;
      let alpha = !rz /. dot n p ap in
      update_x_r n alpha p ap x r;
      let rz' = precondition_dot n inv_diag r z in
      let beta = rz' /. !rz in
      rz := rz';
      update_p n beta z p;
      loop (k + 1)
    end
  in
  let stats = Tats_util.Trace.with_span "cg.solve" (fun () -> loop 0) in
  Tats_util.Metricsreg.incr m_solves;
  (* Per iteration: one spmv (2 nnz flops) plus five n-length fused
     passes (~10 n flops) — close enough for a trend counter. *)
  Tats_util.Metricsreg.add m_flops
    (stats.iterations * ((2 * Sparse.nnz a) + (10 * n)));
  Tats_util.Metricsreg.observe h_iterations (float_of_int stats.iterations);
  (x, stats)
