type stats = { iterations : int; residual_norm : float }

let m_solves = Tats_util.Metricsreg.counter "cg.solves"
let h_iterations = Tats_util.Metricsreg.histogram "cg.iterations"

let dot a b =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (x *. b.(i))) a;
  !acc

let norm v = sqrt (dot v v)

let axpy alpha x y =
  (* y <- y + alpha * x *)
  Array.iteri (fun i xi -> y.(i) <- y.(i) +. (alpha *. xi)) x

let solve ?x0 ?(tol = 1e-10) ?max_iter ?(jacobi = true) a b =
  let n = Sparse.rows a in
  if Sparse.cols a <> n then invalid_arg "Cg.solve: matrix not square";
  if Array.length b <> n then invalid_arg "Cg.solve: size mismatch";
  let max_iter = match max_iter with Some m -> m | None -> 10 * Stdlib.max n 1 in
  let x = match x0 with Some v -> Array.copy v | None -> Array.make n 0.0 in
  let inv_diag =
    if jacobi then
      Array.map (fun d -> if Float.abs d > 0.0 then 1.0 /. d else 1.0) (Sparse.diag a)
    else Array.make n 1.0
  in
  let precondition r = Array.mapi (fun i ri -> inv_diag.(i) *. ri) r in
  let r = Array.copy b in
  axpy (-1.0) (Sparse.mul_vec a x) r;
  let z = precondition r in
  let p = Array.copy z in
  let rz = ref (dot r z) in
  let b_norm = Float.max (norm b) 1e-300 in
  let rec loop k =
    let res = norm r in
    if res <= tol *. b_norm then { iterations = k; residual_norm = res }
    else if k >= max_iter then
      failwith
        (Printf.sprintf "Cg.solve: no convergence after %d iterations (residual %g)"
           k res)
    else begin
      let ap = Sparse.mul_vec a p in
      let alpha = !rz /. dot p ap in
      axpy alpha p x;
      axpy (-.alpha) ap r;
      let z = precondition r in
      let rz' = dot r z in
      let beta = rz' /. !rz in
      rz := rz';
      Array.iteri (fun i zi -> p.(i) <- zi +. (beta *. p.(i))) z;
      loop (k + 1)
    end
  in
  let stats = Tats_util.Trace.with_span "cg.solve" (fun () -> loop 0) in
  Tats_util.Metricsreg.incr m_solves;
  Tats_util.Metricsreg.observe h_iterations (float_of_int stats.iterations);
  (x, stats)
