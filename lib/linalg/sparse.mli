(** Compressed-sparse-row matrices.

    Used by the grid-mode thermal solver, where the conductance matrix of an
    m-by-n cell discretization is far too large (and too sparse) for the dense
    path. *)

type t

val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t
(** Builds a CSR matrix from (row, col, value) triplets. Duplicate (row, col)
    entries are summed. *)

val rows : t -> int
(** Number of rows. *)

val cols : t -> int
(** Number of columns. *)

val nnz : t -> int
(** Number of stored entries (after triplet summing; stored zeros count). *)

val get : t -> int -> int -> float
(** O(row nnz) lookup; 0.0 when absent. *)

val mul_vec : t -> float array -> float array
(** [mul_vec t v] is the matrix-vector product [t * v] as a fresh array of
    length [rows t]. Allocating convenience wrapper over {!mul_vec_into}. *)

val mul_vec_into : t -> float array -> float array -> unit
(** [mul_vec_into t v dst] writes [t * v] into [dst] (length [rows t])
    without allocating — the CG iteration's allocation-free spmv. [v]
    and [dst] must be distinct arrays. *)

val diag : t -> float array
(** Diagonal entries (0.0 where absent). *)

val to_dense : t -> Matrix.t
(** Dense copy — for tests and small matrices only; an m-by-n grid
    conductance matrix explodes to (mn)² entries. *)

val is_symmetric : ?eps:float -> t -> bool
(** Whether [get t i j] and [get t j i] agree within [eps] (default 1e-9)
    everywhere — the precondition the CG solver assumes. *)
