(** Compressed-sparse-row matrices.

    Used by the grid-mode thermal solver, where the conductance matrix of an
    m-by-n cell discretization is far too large (and too sparse) for the dense
    path. *)

type t

val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t
(** Builds a CSR matrix from (row, col, value) triplets. Duplicate (row, col)
    entries are summed. *)

val rows : t -> int
val cols : t -> int
val nnz : t -> int

val get : t -> int -> int -> float
(** O(row nnz) lookup; 0.0 when absent. *)

val mul_vec : t -> float array -> float array

val mul_vec_into : t -> float array -> float array -> unit
(** [mul_vec_into t v dst] writes [t * v] into [dst] (length [rows t])
    without allocating — the CG iteration's allocation-free spmv. [v]
    and [dst] must be distinct arrays. *)

val diag : t -> float array
(** Diagonal entries (0.0 where absent). *)

val to_dense : t -> Matrix.t

val is_symmetric : ?eps:float -> t -> bool
