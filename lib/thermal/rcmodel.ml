module Matrix = Tats_linalg.Matrix
module Block = Tats_floorplan.Block
module Placement = Tats_floorplan.Placement

type t = {
  package : Package.t;
  n_blocks : int;
  a : Matrix.t; (* L + diag(g_amb) *)
  c : float array;
  g_amb : float array;
  lateral : Matrix.t; (* block-to-block conductances for inspection *)
}

let n_blocks t = t.n_blocks
let n_nodes t = t.n_blocks + 2
let spreader_node t = t.n_blocks
let sink_node t = t.n_blocks + 1
let package t = t.package
let system_matrix t = Matrix.copy t.a
let capacitances t = Array.copy t.c

let build (pkg : Package.t) (placement : Placement.t) =
  let n = Array.length placement.Placement.rects in
  if n = 0 then invalid_arg "Rcmodel.build: empty floorplan";
  let nodes = n + 2 in
  let spreader = n and sink = n + 1 in
  let a = Matrix.create nodes nodes in
  let lateral = Matrix.create n n in
  let connect i j g =
    if g > 0.0 then begin
      Matrix.add_to a i i g;
      Matrix.add_to a j j g;
      Matrix.add_to a i j (-.g);
      Matrix.add_to a j i (-.g)
    end
  in
  (* Lateral conduction between abutting blocks. *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let ri = placement.Placement.rects.(i) and rj = placement.Placement.rects.(j) in
      let shared = Block.shared_boundary ri rj in
      let g =
        Package.lateral_conductance pkg ~shared_len:shared
          ~distance:(Block.center_distance ri rj)
      in
      if g > 0.0 then begin
        Matrix.set lateral i j g;
        Matrix.set lateral j i g;
        connect i j g
      end
    done
  done;
  (* Vertical path block -> spreader. *)
  for i = 0 to n - 1 do
    let area = Block.rect_area placement.Placement.rects.(i) in
    let r = Package.block_vertical_resistance pkg ~area in
    connect i spreader (1.0 /. r)
  done;
  (* Spreader -> sink -> ambient. *)
  connect spreader sink (1.0 /. pkg.Package.r_spreader_sink);
  let g_amb = Array.make nodes 0.0 in
  g_amb.(sink) <- 1.0 /. pkg.Package.r_convection;
  Matrix.add_to a sink sink g_amb.(sink);
  (* Capacitances: silicon volume per block, lumped package masses. *)
  let c = Array.make nodes 0.0 in
  for i = 0 to n - 1 do
    let area = Block.rect_area placement.Placement.rects.(i) in
    c.(i) <- pkg.Package.die_cap *. area *. pkg.Package.die_thickness
  done;
  c.(spreader) <- pkg.Package.c_spreader;
  c.(sink) <- pkg.Package.c_sink;
  { package = pkg; n_blocks = n; a; c; g_amb; lateral }

let rhs_into t ~power dst =
  if Array.length power <> t.n_blocks then
    invalid_arg "Rcmodel.rhs: power vector must have one entry per block";
  if Array.length dst <> n_nodes t then
    invalid_arg "Rcmodel.rhs_into: destination must have one entry per node";
  for i = 0 to n_nodes t - 1 do
    let inject = if i < t.n_blocks then power.(i) else 0.0 in
    dst.(i) <- inject +. (t.g_amb.(i) *. t.package.Package.ambient)
  done

let rhs t ~power =
  let dst = Array.make (n_nodes t) 0.0 in
  rhs_into t ~power dst;
  dst

let lateral_conductance_between t i j = Matrix.get t.lateral i j
