(** Transient thermal simulation: [C dT/dt = -A T + rhs(t)].

    Two layers share this module.

    The whole-trace integrators {!rk4} and {!backward_euler} keep the
    original sampled interface: a [power] callback evaluated on a uniform
    time grid. RK4 is accurate for small steps; backward Euler is
    unconditionally stable — suited to the stiff block/package
    time-constant mix.

    The event-driven engine ({!t}) exploits that schedules produce
    {e piecewise-constant} power, the only shape the runtime layer replays:

    - a step-matrix integrator ({!step}) that factors [(C/dt + A)] once per
      distinct [dt] through the blocked {!Tats_linalg.Lu} and reuses
      [Lu.solve_factored_into] with allocation-free state buffers — its
      arithmetic is bit-identical to the original backward-Euler stepper;
    - a recurrence fast path ({!step_fast}) that precomputes the per-[dt]
      propagator [M = (C/dt + A)⁻¹ (C/dt)] once, so a step is
      [T ← M T + q(p)] — one n×n mat-vec — with [q(p) = (C/dt + A)⁻¹ rhs(p)]
      cached per distinct power vector (quantized to 1 nW, like
      {!Inquiry});
    - an exact segment replay ({!replay}) over a {!profile} of power
      breakpoints instead of sampling.

    Engine activity is visible as [transient.*] counters in
    {!Tats_util.Metricsreg} and [transient.factor] / [transient.propagator]
    / [transient.replay] spans in {!Tats_util.Trace}. *)

type trace = { times : float array; temps : float array array }
(** [temps.(k)] is the node temperature vector at [times.(k)]. *)

val initial_ambient : Rcmodel.t -> float array
(** All nodes at the package ambient. *)

val rk4 :
  Rcmodel.t ->
  power:(float -> float array) ->
  t0:float array ->
  dt:float ->
  steps:int ->
  trace
(** [power time] gives per-block power at [time]; the returned array must
    have exactly [Rcmodel.n_blocks] entries (checked — raises
    [Invalid_argument] otherwise). *)

val backward_euler :
  Rcmodel.t ->
  power:(float -> float array) ->
  t0:float array ->
  dt:float ->
  steps:int ->
  trace
(** Same contract as {!rk4}. Internally runs on the event-driven engine's
    exact stepper; results are bit-identical to the original seed
    integrator. *)

val settle_time :
  trace -> steady:float array -> tol:float -> float option
(** First time at which every node is within [tol] °C of [steady] and stays
    there for the rest of the trace. *)

(** {1 Event-driven engine} *)

type system
(** A linear thermal system [C dT/dt = -A T + u], with
    [u(p).(i) = p.(i) + base_rhs.(i)] for the first [n_inputs] nodes and
    [base_rhs.(i)] elsewhere. *)

val system :
  a:Tats_linalg.Matrix.t ->
  c:float array ->
  base_rhs:float array ->
  n_inputs:int ->
  system
(** Build a system directly — the test battery uses this for closed-form
    single-node RC circuits. [a] must be square with one row per entry of
    [c] and [base_rhs]; capacitances must be positive;
    [0 <= n_inputs <= n]. Raises [Invalid_argument] otherwise. *)

val of_model : Rcmodel.t -> system
(** The compact RC network as a system: [n_inputs = n_blocks], and
    [base_rhs] the power-independent ambient injection, so that
    [u(power)] equals [Rcmodel.rhs ~power] bit for bit. *)

val system_size : system -> int
val system_inputs : system -> int

type t
(** An engine instance: per-[dt] factorizations, propagators and
    quantized-power [q] caches, plus reusable state buffers. Not
    thread-safe — confine each engine to one domain. *)

val create : system -> t

val step : t -> dt:float -> power:float array -> float array -> unit
(** One backward-Euler step in place on the temperature vector:
    [(C/dt + A) T' = (C/dt) T + u(power)]. The first [step] at a given
    [dt] factors [(C/dt + A)]; subsequent steps reuse the factorization
    and internal buffers (no per-step allocation). Bit-identical to the
    seed integrator's arithmetic. Raises [Invalid_argument] when [dt <= 0]
    or [power]/temperature lengths are wrong. *)

val step_fast : t -> dt:float -> power:float array -> float array -> unit
(** One recurrence step [T ← M T + q(power)] in place. The first
    [step_fast] at a given [dt] builds the propagator ([n] batched
    factored solves); [q] is cached per distinct quantized power vector,
    so replaying constant power costs one mat-vec per step. Within
    floating-point round-off of {!step} (not bit-identical: the solve of a
    sum is not the sum of solves). *)

(** {2 Piecewise-constant power profiles} *)

type profile
(** One period of a periodic piecewise-constant power trace: exact
    breakpoints, no sampling. *)

val profile : duration:float -> segments:(float * float array) list -> profile
(** [profile ~duration ~segments] with [segments = [(s0, p0); (s1, p1); ...]]:
    power [pk] (one entry per input) holds on [[sk, s{k+1})], the last
    segment until [duration]. Segment starts must begin at [0.], ascend
    strictly, and stay below [duration]; all power vectors must have the
    same length. Raises [Invalid_argument] otherwise. *)

val profile_duration : profile -> float
val profile_segments : profile -> int

val profile_power : profile -> float -> float array
(** [profile_power p t] is a copy of the power vector in force at time
    [t mod duration] — the piecewise evaluation the engine integrates. *)

type replay_result = {
  final : float array;      (** node temperatures at the end of the replay *)
  peak : float array;       (** per-node peak over the whole replay, incl. [t0] *)
  last_period_peak : float array;  (** per-node peak over the last period *)
  steps : int;              (** integration steps taken *)
  trace : trace option;     (** full trace when [record] *)
}

val replay :
  ?record:bool ->
  ?exact:bool ->
  t ->
  profile:profile ->
  t0:float array ->
  dt:float ->
  periods:int ->
  replay_result
(** Replay [periods] repetitions of [profile] starting from [t0]: each
    segment is integrated with steps of [dt] plus one exact remainder step
    to land on the breakpoint (event-driven — no breakpoint is ever
    straddled or sampled). Per-segment [q] vectors (or right-hand sides,
    under [~exact:true]) are precomputed once, so the per-step cost is one
    mat-vec ([~exact:false], the default) or one factored solve
    ([~exact:true], bit-identical to {!step}). [record] (default [false])
    retains the full trace; peaks and the final state are always
    returned. *)

(** {2 Instrumentation} *)

type stats = {
  steps : int;              (** integration steps served *)
  factorizations : int;     (** distinct [(C/dt + A)] factorizations *)
  propagator_builds : int;  (** distinct propagators materialized *)
  q_cache_hits : int;
  q_cache_misses : int;
}

val stats : t -> stats
(** This engine's counters. The same counts accumulate process-wide in
    {!Tats_util.Metricsreg} under [transient.steps],
    [transient.factorizations], [transient.propagator_builds],
    [transient.q_cache_hits] and [transient.q_cache_misses]. *)

val pp_stats : Format.formatter -> stats -> unit
