module Lu = Tats_linalg.Lu
module Metricsreg = Tats_util.Metricsreg

(* Every leakage fixed point in the library funnels through [fixed_point]
   (dense path and inquiry fast path alike), so this one histogram is the
   authoritative iteration-count distribution. *)
let h_fp_iterations = Metricsreg.histogram "steady.fp_iterations"

type t = { model : Rcmodel.t; factored : Lu.t }

let create model = { model; factored = Lu.factor (Rcmodel.system_matrix model) }

let model t = t.model

let solve t ~power =
  Array.iter
    (fun p -> if p < 0.0 then invalid_arg "Steady.solve: negative power")
    power;
  Lu.solve_factored t.factored (Rcmodel.rhs t.model ~power)

let block_temperatures t ~power =
  Array.sub (solve t ~power) 0 (Rcmodel.n_blocks t.model)

(* The exponential leakage feedback can run away on very hot designs; real
   silicon saturates (and throttles) first, so the temperature excursion in
   the exponent is capped at 100 K above the reference. *)
let max_leak_excursion = 100.0

let fixed_point ?(max_iter = 200) ?(tol = 1e-6) ?init ~package ~solve ~dynamic
    ~idle () =
  let n = Array.length dynamic in
  if Array.length idle <> n then
    invalid_arg "Steady.fixed_point: bad vector length";
  let beta = package.Package.leak_beta and t_ref = package.Package.leak_t_ref in
  let leak temp base =
    let excursion = Float.min (temp -. t_ref) max_leak_excursion in
    base *. exp (beta *. excursion)
  in
  (* One power buffer and two temperature buffers serve the whole
     iteration; [solve] writes block temperatures into its destination. *)
  let power = Array.make n 0.0 in
  let a = Array.make n 0.0 and b = Array.make n 0.0 in
  (match init with
  | Some t0 ->
      if Array.length t0 <> n then
        invalid_arg "Steady.fixed_point: bad initial guess length";
      Array.blit t0 0 a 0 n
  | None -> solve dynamic a);
  let cur = ref a and next = ref b in
  let rec iterate k =
    if k >= max_iter then
      failwith "Steady: leakage fixed point did not converge";
    let cur_t = !cur and next_t = !next in
    for i = 0 to n - 1 do
      power.(i) <- dynamic.(i) +. leak cur_t.(i) idle.(i)
    done;
    solve power next_t;
    (* Damping keeps the exponential feedback stable on hot designs; the
       convergence test is on the damped (committed) step. *)
    let delta = ref 0.0 in
    for i = 0 to n - 1 do
      let damped = (0.4 *. next_t.(i)) +. (0.6 *. cur_t.(i)) in
      delta := Float.max !delta (Float.abs (damped -. cur_t.(i)));
      next_t.(i) <- damped
    done;
    cur := next_t;
    next := cur_t;
    if !delta <= tol then k + 1 else iterate (k + 1)
  in
  let iters = iterate 0 in
  Metricsreg.observe h_fp_iterations (float_of_int iters);
  (!cur, iters)

let factored t = t.factored

(* One blocked multi-RHS sweep instead of a loop of unit solves;
   Lu.solve_many guarantees element-wise identical columns. *)
let influence_columns ?n t =
  let nodes = Lu.size t.factored in
  let n = match n with None -> nodes | Some n -> n in
  if n < 0 || n > nodes then
    invalid_arg "Steady.influence_columns: column count out of range";
  Lu.solve_many t.factored
    (Array.init n (fun j ->
         let e = Array.make nodes 0.0 in
         e.(j) <- 1.0;
         e))

let solve_with_leakage ?max_iter ?tol t ~dynamic ~idle =
  let n = Rcmodel.n_blocks t.model in
  if Array.length dynamic <> n || Array.length idle <> n then
    invalid_arg "Steady.solve_with_leakage: bad vector length";
  let nodes = Rcmodel.n_nodes t.model in
  let rhs = Array.make nodes 0.0 and x = Array.make nodes 0.0 in
  let solve power dst =
    Rcmodel.rhs_into t.model ~power rhs;
    Lu.solve_factored_into t.factored ~b:rhs ~x;
    Array.blit x 0 dst 0 n
  in
  fixed_point ?max_iter ?tol ~package:(Rcmodel.package t.model) ~solve ~dynamic
    ~idle ()
