module Matrix = Tats_linalg.Matrix
module Lu = Tats_linalg.Lu
module Trace = Tats_util.Trace
module Metricsreg = Tats_util.Metricsreg

type trace = { times : float array; temps : float array array }

let initial_ambient model =
  Array.make (Rcmodel.n_nodes model) (Rcmodel.package model).Package.ambient

(* Fleet-wide engine counters (every instance accumulates into the same
   registry cells, like Inquiry's). *)
let m_steps = Metricsreg.counter "transient.steps"
let m_factorizations = Metricsreg.counter "transient.factorizations"
let m_propagator_builds = Metricsreg.counter "transient.propagator_builds"
let m_q_hits = Metricsreg.counter "transient.q_cache_hits"
let m_q_misses = Metricsreg.counter "transient.q_cache_misses"

(* ------------------------------------------------------------------ *)
(* The event-driven engine                                            *)
(* ------------------------------------------------------------------ *)

type system = {
  a : Matrix.t;
  c : float array;
  base_rhs : float array;
  n_inputs : int;
}

let system ~a ~c ~base_rhs ~n_inputs =
  let n = Array.length c in
  if Matrix.rows a <> n || Matrix.cols a <> n then
    invalid_arg "Transient.system: matrix must be n x n for n capacitances";
  if Array.length base_rhs <> n then
    invalid_arg "Transient.system: base_rhs must have one entry per node";
  if n_inputs < 0 || n_inputs > n then
    invalid_arg "Transient.system: n_inputs out of range";
  Array.iter
    (fun ci ->
      if not (ci > 0.0) then
        invalid_arg "Transient.system: capacitances must be positive")
    c;
  { a = Matrix.copy a; c = Array.copy c; base_rhs = Array.copy base_rhs; n_inputs }

let of_model model =
  (* base_rhs = rhs at zero power, so u(p).(i) = p.(i) +. base_rhs.(i)
     reproduces Rcmodel.rhs bit for bit (inject +. ambient term, in that
     order, with a zero inject contributing +. 0.0). *)
  let zero = Array.make (Rcmodel.n_blocks model) 0.0 in
  {
    a = Rcmodel.system_matrix model;
    c = Rcmodel.capacitances model;
    base_rhs = Rcmodel.rhs model ~power:zero;
    n_inputs = Rcmodel.n_blocks model;
  }

let system_size sys = Array.length sys.c
let system_inputs sys = sys.n_inputs

(* State for one distinct step size: the factored (C/dt + A), the lazily
   built propagator columns of M = (C/dt + A)^-1 (C/dt), and the
   quantized-power q cache. *)
type stepper = {
  factored : Lu.t;
  c_over_dt : float array;
  mutable prop : float array array option; (* column j = M e_j *)
  q_cache : (int64 array, float array) Hashtbl.t;
}

type counters = {
  mutable k_steps : int;
  mutable k_factorizations : int;
  mutable k_propagator_builds : int;
  mutable k_q_hits : int;
  mutable k_q_misses : int;
}

type t = {
  sys : system;
  steppers : (int64, stepper) Hashtbl.t; (* keyed by the bits of dt *)
  rhs_buf : float array;
  b_buf : float array;
  x_buf : float array;
  k : counters;
}

let create sys =
  let n = system_size sys in
  {
    sys;
    steppers = Hashtbl.create 8;
    rhs_buf = Array.make n 0.0;
    b_buf = Array.make n 0.0;
    x_buf = Array.make n 0.0;
    k =
      {
        k_steps = 0;
        k_factorizations = 0;
        k_propagator_builds = 0;
        k_q_hits = 0;
        k_q_misses = 0;
      };
  }

let check_power sys power =
  if Array.length power <> sys.n_inputs then
    invalid_arg
      (Printf.sprintf
         "Transient: power vector has %d entries; the model expects one per \
          input block (%d)"
         (Array.length power) sys.n_inputs)

let check_state sys temps =
  if Array.length temps <> system_size sys then
    invalid_arg "Transient: temperature vector must have one entry per node"

(* u(power) — same operand order as Rcmodel.rhs_into. *)
let rhs_into sys ~power dst =
  check_power sys power;
  for i = 0 to system_size sys - 1 do
    let inject = if i < sys.n_inputs then power.(i) else 0.0 in
    dst.(i) <- inject +. sys.base_rhs.(i)
  done

let stepper_for t ~dt =
  if not (Float.is_finite dt && dt > 0.0) then
    invalid_arg "Transient: dt must be positive and finite";
  let key = Int64.bits_of_float dt in
  match Hashtbl.find_opt t.steppers key with
  | Some s -> s
  | None ->
      Trace.with_span "transient.factor" @@ fun () ->
      Metricsreg.incr m_factorizations;
      t.k.k_factorizations <- t.k.k_factorizations + 1;
      let n = system_size t.sys in
      let lhs = Matrix.copy t.sys.a in
      let c_over_dt = Array.map (fun ci -> ci /. dt) t.sys.c in
      for i = 0 to n - 1 do
        Matrix.add_to lhs i i c_over_dt.(i)
      done;
      let s =
        { factored = Lu.factor lhs; c_over_dt; prop = None; q_cache = Hashtbl.create 64 }
      in
      Hashtbl.replace t.steppers key s;
      s

let count_step t =
  Metricsreg.incr m_steps;
  t.k.k_steps <- t.k.k_steps + 1

(* The exact backward-Euler step, given an already-evaluated right-hand
   side: b = (C/dt) T + u, solve (C/dt + A) T' = b.  The addition order
   matches the seed integrator (commutativity makes c/dt*T +. u identical
   to u +. c/dt*T). *)
let step_with_rhs t st rhs temps =
  let n = system_size t.sys in
  for i = 0 to n - 1 do
    t.b_buf.(i) <- (st.c_over_dt.(i) *. temps.(i)) +. rhs.(i)
  done;
  Lu.solve_factored_into st.factored ~b:t.b_buf ~x:t.x_buf;
  Array.blit t.x_buf 0 temps 0 n;
  count_step t

let step t ~dt ~power temps =
  check_state t.sys temps;
  let st = stepper_for t ~dt in
  rhs_into t.sys ~power t.rhs_buf;
  step_with_rhs t st t.rhs_buf temps

let propagator t st =
  match st.prop with
  | Some cols -> cols
  | None ->
      Trace.with_span "transient.propagator" @@ fun () ->
      Metricsreg.incr m_propagator_builds;
      t.k.k_propagator_builds <- t.k.k_propagator_builds + 1;
      let n = system_size t.sys in
      let rhs =
        Array.init n (fun j ->
            let e = Array.make n 0.0 in
            e.(j) <- st.c_over_dt.(j);
            e)
      in
      let cols = Lu.solve_many st.factored rhs in
      st.prop <- Some cols;
      cols

(* 1 nW quantization, the Inquiry cache-key scheme: far below any
   physically meaningful power difference, fine enough that only repeats
   of the same vector collide. *)
let quantize p = Int64.of_float (Float.round (p *. 1e9))

let max_q_cache_entries = 1 lsl 16

let q_for t st ~power =
  check_power t.sys power;
  let key = Array.map quantize power in
  match Hashtbl.find_opt st.q_cache key with
  | Some q ->
      Metricsreg.incr m_q_hits;
      t.k.k_q_hits <- t.k.k_q_hits + 1;
      q
  | None ->
      Metricsreg.incr m_q_misses;
      t.k.k_q_misses <- t.k.k_q_misses + 1;
      rhs_into t.sys ~power t.rhs_buf;
      let q = Array.make (system_size t.sys) 0.0 in
      Lu.solve_factored_into st.factored ~b:t.rhs_buf ~x:q;
      if Hashtbl.length st.q_cache >= max_q_cache_entries then
        Hashtbl.reset st.q_cache;
      Hashtbl.replace st.q_cache key q;
      q

(* T' = M T + q as a column-major saxpy sweep over the propagator. *)
let step_with_q t st q temps =
  let n = system_size t.sys in
  let cols = propagator t st in
  Array.blit q 0 t.x_buf 0 n;
  for j = 0 to n - 1 do
    let tj = temps.(j) in
    if tj <> 0.0 then begin
      let col = cols.(j) in
      for i = 0 to n - 1 do
        t.x_buf.(i) <- t.x_buf.(i) +. (tj *. col.(i))
      done
    end
  done;
  Array.blit t.x_buf 0 temps 0 n;
  count_step t

let step_fast t ~dt ~power temps =
  check_state t.sys temps;
  let st = stepper_for t ~dt in
  let q = q_for t st ~power in
  step_with_q t st q temps

(* ------------------------------------------------------------------ *)
(* Piecewise-constant profiles and replay                             *)
(* ------------------------------------------------------------------ *)

type profile = {
  duration : float;
  starts : float array;
  powers : float array array;
}

let profile ~duration ~segments =
  if not (Float.is_finite duration && duration > 0.0) then
    invalid_arg "Transient.profile: duration must be positive and finite";
  (match segments with
  | [] -> invalid_arg "Transient.profile: no segments"
  | (s0, _) :: _ ->
      if s0 <> 0.0 then invalid_arg "Transient.profile: first segment must start at 0");
  let starts = Array.of_list (List.map fst segments) in
  let powers = Array.of_list (List.map (fun (_, p) -> Array.copy p) segments) in
  let n_inputs = Array.length powers.(0) in
  Array.iteri
    (fun k s ->
      if not (Float.is_finite s) || s < 0.0 || s >= duration then
        invalid_arg "Transient.profile: segment start outside [0, duration)";
      if k > 0 && s <= starts.(k - 1) then
        invalid_arg "Transient.profile: segment starts must ascend strictly";
      if Array.length powers.(k) <> n_inputs then
        invalid_arg "Transient.profile: inconsistent power vector lengths")
    starts;
  { duration; starts; powers }

let profile_duration p = p.duration
let profile_segments p = Array.length p.starts

let profile_power p time =
  let t = Float.rem (Float.rem time p.duration +. p.duration) p.duration in
  let k = ref 0 in
  Array.iteri (fun i s -> if s <= t then k := i) p.starts;
  Array.copy p.powers.(!k)

type replay_result = {
  final : float array;
  peak : float array;
  last_period_peak : float array;
  steps : int;
  trace : trace option;
}

(* Segment plan: [full] whole steps of [dt], then one remainder step that
   lands exactly on the breakpoint.  The remainder is the same float every
   period, so its factorization is computed once and cached. *)
type plan_entry = { power : float array; full : int; rem : float }

let plan_of_profile p ~dt =
  let n_seg = Array.length p.starts in
  Array.init n_seg (fun k ->
      let seg_end = if k + 1 < n_seg then p.starts.(k + 1) else p.duration in
      let len = seg_end -. p.starts.(k) in
      let full = int_of_float (Float.floor ((len /. dt) +. 1e-9)) in
      let rem = len -. (float_of_int full *. dt) in
      let rem = if rem <= 1e-9 *. dt then 0.0 else rem in
      { power = p.powers.(k); full; rem })

let replay ?(record = false) ?(exact = false) t ~profile:p ~t0 ~dt ~periods =
  check_state t.sys t0;
  if periods < 1 then invalid_arg "Transient.replay: need at least one period";
  if not (Float.is_finite dt && dt > 0.0) then
    invalid_arg "Transient.replay: dt must be positive and finite";
  Array.iter (check_power t.sys) p.powers;
  let n = system_size t.sys in
  let plan = plan_of_profile p ~dt in
  let steps_per_period =
    Array.fold_left (fun acc e -> acc + e.full + if e.rem > 0.0 then 1 else 0) 0 plan
  in
  let total = periods * steps_per_period in
  Trace.with_span "transient.replay"
    ~args:
      [
        ("periods", Trace.Int periods);
        ("segments", Trace.Int (Array.length plan));
        ("steps", Trace.Int total);
        ("exact", Trace.Bool exact);
      ]
  @@ fun () ->
  let st_dt = stepper_for t ~dt in
  (* Precompute the per-segment drive once: q vectors on the fast path
     (rhs solved through the factorization), plain right-hand sides on the
     exact path.  Either is constant across periods. *)
  let drive_full =
    Array.map
      (fun e ->
        if exact then begin
          let rhs = Array.make n 0.0 in
          rhs_into t.sys ~power:e.power rhs;
          rhs
        end
        else q_for t st_dt ~power:e.power)
      plan
  in
  let rem_steppers =
    Array.map (fun e -> if e.rem > 0.0 then Some (stepper_for t ~dt:e.rem) else None) plan
  in
  let drive_rem =
    Array.mapi
      (fun k e ->
        match rem_steppers.(k) with
        | None -> None
        | Some st_rem ->
            if exact then Some drive_full.(k) (* rhs is dt-independent *)
            else Some (q_for t st_rem ~power:e.power))
      plan
  in
  let temps = Array.copy t0 in
  let peak = Array.copy t0 in
  let last_period_peak = Array.copy t0 in
  let times = if record then Array.make (total + 1) 0.0 else [||] in
  let temps_trace = if record then Array.make (total + 1) [||] else [||] in
  if record then temps_trace.(0) <- Array.copy t0;
  let wall = ref 0.0 in
  let k_step = ref 0 in
  let in_last = ref (periods = 1) in
  let after_step h =
    incr k_step;
    wall := !wall +. h;
    for i = 0 to n - 1 do
      if temps.(i) > peak.(i) then peak.(i) <- temps.(i);
      if !in_last && temps.(i) > last_period_peak.(i) then
        last_period_peak.(i) <- temps.(i)
    done;
    if record then begin
      times.(!k_step) <- !wall;
      temps_trace.(!k_step) <- Array.copy temps
    end
  in
  for period = 1 to periods do
    if period = periods then begin
      in_last := true;
      Array.blit temps 0 last_period_peak 0 n
    end;
    Array.iteri
      (fun k e ->
        let advance st_h drive h =
          if exact then step_with_rhs t st_h drive temps
          else step_with_q t st_h drive temps;
          after_step h
        in
        for _ = 1 to e.full do
          advance st_dt drive_full.(k) dt
        done;
        match (rem_steppers.(k), drive_rem.(k)) with
        | Some st_rem, Some drive -> advance st_rem drive e.rem
        | _ -> ())
      plan
  done;
  {
    final = temps;
    peak;
    last_period_peak;
    steps = total;
    trace = (if record then Some { times; temps = temps_trace } else None);
  }

(* ------------------------------------------------------------------ *)
(* Whole-trace integrators                                            *)
(* ------------------------------------------------------------------ *)

let check_args model t0 dt steps =
  if Array.length t0 <> Rcmodel.n_nodes model then
    invalid_arg "Transient: t0 must cover all nodes";
  if dt <= 0.0 || steps < 1 then invalid_arg "Transient: bad dt/steps"

let checked_power model ~power time =
  let p = power time in
  if Array.length p <> Rcmodel.n_blocks model then
    invalid_arg
      (Printf.sprintf
         "Transient: power callback returned %d entries at t = %g; expected \
          one per block (%d)"
         (Array.length p) time (Rcmodel.n_blocks model));
  p

let derivative model c_inv a temps rhs =
  let flow = Matrix.mul_vec a temps in
  Array.init (Rcmodel.n_nodes model) (fun i -> c_inv.(i) *. (rhs.(i) -. flow.(i)))

let rk4 model ~power ~t0 ~dt ~steps =
  check_args model t0 dt steps;
  let a = Rcmodel.system_matrix model in
  let c_inv = Array.map (fun c -> 1.0 /. c) (Rcmodel.capacitances model) in
  let n = Rcmodel.n_nodes model in
  let times = Array.make (steps + 1) 0.0 in
  let temps = Array.make (steps + 1) t0 in
  temps.(0) <- Array.copy t0;
  for k = 1 to steps do
    let t_prev = times.(k - 1) and y = temps.(k - 1) in
    let rhs_at time = Rcmodel.rhs model ~power:(checked_power model ~power time) in
    let f time y = derivative model c_inv a y (rhs_at time) in
    let add y k scale = Array.init n (fun i -> y.(i) +. (scale *. k.(i))) in
    let k1 = f t_prev y in
    let k2 = f (t_prev +. (dt /. 2.0)) (add y k1 (dt /. 2.0)) in
    let k3 = f (t_prev +. (dt /. 2.0)) (add y k2 (dt /. 2.0)) in
    let k4 = f (t_prev +. dt) (add y k3 dt) in
    temps.(k) <-
      Array.init n (fun i ->
          y.(i) +. (dt /. 6.0 *. (k1.(i) +. (2.0 *. k2.(i)) +. (2.0 *. k3.(i)) +. k4.(i))));
    times.(k) <- t_prev +. dt
  done;
  { times; temps }

let backward_euler model ~power ~t0 ~dt ~steps =
  check_args model t0 dt steps;
  (* (C/dt + A) T_{k+1} = C/dt T_k + rhs(t_{k+1}) — run on the engine's
     exact stepper; same factorization, same operand order, bit-identical
     to the original in-line integrator. *)
  let engine = create (of_model model) in
  let times = Array.make (steps + 1) 0.0 in
  let temps = Array.make (steps + 1) t0 in
  temps.(0) <- Array.copy t0;
  let state = Array.copy t0 in
  for k = 1 to steps do
    let time = float_of_int k *. dt in
    step engine ~dt ~power:(checked_power model ~power time) state;
    temps.(k) <- Array.copy state;
    times.(k) <- time
  done;
  { times; temps }

let settle_time trace ~steady ~tol =
  let within temps =
    let ok = ref true in
    Array.iteri (fun i t -> if Float.abs (t -. steady.(i)) > tol then ok := false) temps;
    !ok
  in
  let n = Array.length trace.times in
  (* Scan backwards for the earliest index from which everything stays
     settled. *)
  let rec scan k last_good =
    if k < 0 then last_good
    else if within trace.temps.(k) then scan (k - 1) (Some k)
    else last_good
  in
  match scan (n - 1) None with
  | Some k -> Some trace.times.(k)
  | None -> None

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                    *)
(* ------------------------------------------------------------------ *)

type stats = {
  steps : int;
  factorizations : int;
  propagator_builds : int;
  q_cache_hits : int;
  q_cache_misses : int;
}

let stats t =
  {
    steps = t.k.k_steps;
    factorizations = t.k.k_factorizations;
    propagator_builds = t.k.k_propagator_builds;
    q_cache_hits = t.k.k_q_hits;
    q_cache_misses = t.k.k_q_misses;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>steps             %d@,factorizations    %d@,propagator builds %d@,\
     q-cache hits      %d (%.1f%%)@,q-cache misses    %d@]"
    s.steps s.factorizations s.propagator_builds s.q_cache_hits
    (let total = s.q_cache_hits + s.q_cache_misses in
     if total = 0 then 0.0 else 100.0 *. float_of_int s.q_cache_hits /. float_of_int total)
    s.q_cache_misses
