module Sparse = Tats_linalg.Sparse
module Cg = Tats_linalg.Cg
module Block = Tats_floorplan.Block
module Placement = Tats_floorplan.Placement
module Metricsreg = Tats_util.Metricsreg

let m_solves = Metricsreg.counter "gridmodel.solves"
let g_last_residual = Metricsreg.gauge "gridmodel.cg_residual"
let h_cg_iterations = Metricsreg.histogram "gridmodel.cg_iterations"

type t = {
  package : Package.t;
  nx : int;
  ny : int;
  n_blocks : int;
  a : Sparse.t; (* (nx*ny + 2) x (nx*ny + 2) *)
  g_amb : float array;
  coverage : (int * float) array array;
      (* per block: (cell, fraction of the block's area in that cell) *)
  cell_area : float;
  (* Shared CG iteration buffers: grids run to 32x32 and beyond, so the
     per-solve workspace is worth keeping. The lock is only ever
     try-acquired — a contending solve falls back to a fresh workspace
     rather than serializing (the domain pool may solve in parallel). *)
  ws : Cg.workspace;
  ws_lock : Mutex.t;
}

let n_cells t = t.nx * t.ny

let build ?(nx = 32) ?(ny = 32) (pkg : Package.t) (placement : Placement.t) =
  if nx < 1 || ny < 1 then invalid_arg "Gridmodel.build: bad grid";
  let n_blocks = Array.length placement.Placement.rects in
  if n_blocks = 0 then invalid_arg "Gridmodel.build: empty floorplan";
  let die_w = placement.Placement.die_w and die_h = placement.Placement.die_h in
  let cw = die_w /. float_of_int nx and ch = die_h /. float_of_int ny in
  let cell_area = cw *. ch in
  let n = nx * ny in
  let spreader = n and sink = n + 1 in
  let nodes = n + 2 in
  let idx ix iy = (iy * nx) + ix in
  let triplets = ref [] in
  let connect i j g =
    if g > 0.0 then
      triplets :=
        (i, i, g) :: (j, j, g) :: (i, j, -.g) :: (j, i, -.g) :: !triplets
  in
  (* Lateral cell-to-cell conduction: g = k * t * section / distance. *)
  let g_we = Package.lateral_conductance pkg ~shared_len:ch ~distance:cw in
  let g_ns = Package.lateral_conductance pkg ~shared_len:cw ~distance:ch in
  for iy = 0 to ny - 1 do
    for ix = 0 to nx - 1 do
      if ix + 1 < nx then connect (idx ix iy) (idx (ix + 1) iy) g_we;
      if iy + 1 < ny then connect (idx ix iy) (idx ix (iy + 1)) g_ns
    done
  done;
  (* Vertical path per cell. The die-conduction part scales with cell area;
     the spreading (constriction) part is a block-level phenomenon, so it is
     calibrated against the functional block covering the cell: spreading
     the block's constriction resistance over its cells in proportion to
     area makes the parallel combination over the block reproduce the
     compact model's block resistance exactly. Cells not covered by any
     block use the die as the reference region. *)
  let die_area = die_w *. die_h in
  let constriction area = pkg.Package.r_spread_coeff /. sqrt (area /. Float.pi) in
  let covering_block_area ix iy =
    let cell =
      {
        Block.x = float_of_int ix *. cw;
        y = float_of_int iy *. ch;
        w = cw;
        h = ch;
      }
    in
    let best = ref (0.0, die_area) in
    Array.iter
      (fun rect ->
        let ov = Block.overlap_area rect cell in
        if ov > fst !best then best := (ov, Block.rect_area rect))
      placement.Placement.rects;
    snd !best
  in
  for iy = 0 to ny - 1 do
    for ix = 0 to nx - 1 do
      let ref_area = covering_block_area ix iy in
      let r_v =
        (pkg.Package.die_thickness /. (pkg.Package.k_die *. cell_area))
        +. (constriction ref_area *. (ref_area /. cell_area))
      in
      connect (idx ix iy) spreader (1.0 /. r_v)
    done
  done;
  connect spreader sink (1.0 /. pkg.Package.r_spreader_sink);
  let g_amb = Array.make nodes 0.0 in
  g_amb.(sink) <- 1.0 /. pkg.Package.r_convection;
  triplets := (sink, sink, g_amb.(sink)) :: !triplets;
  let a = Sparse.of_triplets ~rows:nodes ~cols:nodes !triplets in
  (* Coverage map: which cells each block overlaps and by what fraction of
     the block's own area. *)
  let coverage =
    Array.map
      (fun rect ->
        let acc = ref [] in
        let block_area = Block.rect_area rect in
        for iy = 0 to ny - 1 do
          for ix = 0 to nx - 1 do
            let cell =
              {
                Block.x = float_of_int ix *. cw;
                y = float_of_int iy *. ch;
                w = cw;
                h = ch;
              }
            in
            let ov = Block.overlap_area rect cell in
            if ov > 1e-15 then acc := (idx ix iy, ov /. block_area) :: !acc
          done
        done;
        Array.of_list !acc)
      placement.Placement.rects
  in
  {
    package = pkg;
    nx;
    ny;
    n_blocks;
    a;
    g_amb;
    coverage;
    cell_area;
    ws = Cg.workspace nodes;
    ws_lock = Mutex.create ();
  }

let node_temperatures t ~power =
  if Array.length power <> t.n_blocks then
    invalid_arg "Gridmodel: power vector must have one entry per block";
  let nodes = (t.nx * t.ny) + 2 in
  let rhs = Array.init nodes (fun i -> t.g_amb.(i) *. t.package.Package.ambient) in
  Array.iteri
    (fun b cells ->
      Array.iter (fun (cell, frac) -> rhs.(cell) <- rhs.(cell) +. (power.(b) *. frac)) cells)
    t.coverage;
  let x, stats =
    if Mutex.try_lock t.ws_lock then
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.ws_lock)
        (fun () ->
          Cg.solve ~workspace:t.ws ~tol:1e-9 ~max_iter:(50 * nodes) t.a rhs)
    else Cg.solve ~tol:1e-9 ~max_iter:(50 * nodes) t.a rhs
  in
  Metricsreg.incr m_solves;
  Metricsreg.set_gauge g_last_residual stats.Cg.residual_norm;
  Metricsreg.observe h_cg_iterations (float_of_int stats.Cg.iterations);
  x

let block_temperatures t ~power =
  let temps = node_temperatures t ~power in
  Array.map
    (fun cells ->
      (* Weighted by the block-area fraction in each cell (fractions sum to
         ~1 for blocks inside the die). *)
      let total_w = Array.fold_left (fun acc (_, f) -> acc +. f) 0.0 cells in
      let s = Array.fold_left (fun acc (c, f) -> acc +. (f *. temps.(c))) 0.0 cells in
      if total_w > 0.0 then s /. total_w else t.package.Package.ambient)
    t.coverage

let cell_temperatures t ~power =
  let temps = node_temperatures t ~power in
  Array.init t.ny (fun iy -> Array.init t.nx (fun ix -> temps.((iy * t.nx) + ix)))

let max_cell_temperature t ~power =
  let temps = node_temperatures t ~power in
  let worst = ref neg_infinity in
  for i = 0 to (t.nx * t.ny) - 1 do
    worst := Float.max !worst temps.(i)
  done;
  !worst
