module Placement = Tats_floorplan.Placement

type t = {
  package : Package.t;
  placement : Placement.t;
  model : Rcmodel.t;
  solver : Steady.t;
  mutable inquiries : int;
  mutable engine : Inquiry.t option;
}

let create ?(package = Package.default) placement =
  let model = Rcmodel.build package placement in
  {
    package;
    placement;
    model;
    solver = Steady.create model;
    inquiries = 0;
    engine = None;
  }

let n_blocks t = Rcmodel.n_blocks t.model
let package t = t.package
let placement t = t.placement
let model t = t.model
let solver t = t.solver

(* The engine costs n_blocks factored solves to build, so it is created on
   first use — facades that only ever serve direct queries never pay. *)
let inquiry t =
  match t.engine with
  | Some e -> e
  | None ->
      let e = Inquiry.create t.solver in
      t.engine <- Some e;
      e

let inquiry_stats t =
  match t.engine with None -> Inquiry.empty_stats | Some e -> Inquiry.stats e

let inquiries t =
  t.inquiries
  + match t.engine with None -> 0 | Some e -> (Inquiry.stats e).Inquiry.inquiries

let query t ~power =
  t.inquiries <- t.inquiries + 1;
  Steady.block_temperatures t.solver ~power

let query_with_leakage t ~dynamic ~idle =
  t.inquiries <- t.inquiries + 1;
  fst (Steady.solve_with_leakage t.solver ~dynamic ~idle)

let inquire_with_leakage ?warm t ~dynamic ~idle =
  Inquiry.query_with_leakage ?warm (inquiry t) ~dynamic ~idle

let average_temperature t ~power = Tats_util.Stats.mean (query t ~power)
let peak_temperature t ~power = Tats_util.Stats.max (query t ~power)
