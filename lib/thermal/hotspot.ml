module Placement = Tats_floorplan.Placement
module Metricsreg = Tats_util.Metricsreg

(* Fleet-wide mirrors of the per-facade counters. *)
let m_direct_queries = Metricsreg.counter "hotspot.direct_queries"
let m_engines = Metricsreg.counter "hotspot.engines_built"

type t = {
  package : Package.t;
  placement : Placement.t;
  model : Rcmodel.t;
  solver : Steady.t;
  mutable inquiries : int;
  mutable engine : Inquiry.t option;
  (* Guards [inquiries] and the lazy [engine] slot when the facade is
     shared across pool domains. *)
  lock : Mutex.t;
}

let create ?(package = Package.default) placement =
  let model = Rcmodel.build package placement in
  {
    package;
    placement;
    model;
    solver = Steady.create model;
    inquiries = 0;
    engine = None;
    lock = Mutex.create ();
  }

let n_blocks t = Rcmodel.n_blocks t.model
let package t = t.package
let placement t = t.placement
let model t = t.model
let solver t = t.solver

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* The engine costs n_blocks factored solves to build (one batched
   [Lu.solve_many] sweep via [Steady.influence_columns]), so it is created
   on first use — facades that only ever serve direct queries never pay.
   The lock makes the lazy creation race-free: exactly one engine is ever
   built, and concurrent callers all see it. *)
let inquiry t =
  locked t (fun () ->
      match t.engine with
      | Some e -> e
      | None ->
          let e = Inquiry.create t.solver in
          Metricsreg.incr m_engines;
          t.engine <- Some e;
          e)

let engine_opt t = locked t (fun () -> t.engine)

let inquiry_stats t =
  match engine_opt t with None -> Inquiry.empty_stats | Some e -> Inquiry.stats e

let inquiries t =
  locked t (fun () -> t.inquiries)
  + match engine_opt t with
    | None -> 0
    | Some e -> (Inquiry.stats e).Inquiry.inquiries

let count_direct t =
  Metricsreg.incr m_direct_queries;
  locked t (fun () -> t.inquiries <- t.inquiries + 1)

let query t ~power =
  count_direct t;
  Steady.block_temperatures t.solver ~power

let query_with_leakage t ~dynamic ~idle =
  count_direct t;
  fst (Steady.solve_with_leakage t.solver ~dynamic ~idle)

let inquire_with_leakage ?warm ?cache t ~dynamic ~idle =
  Inquiry.query_with_leakage ?warm ?cache (inquiry t) ~dynamic ~idle

let average_temperature t ~power = Tats_util.Stats.mean (query t ~power)
let peak_temperature t ~power = Tats_util.Stats.max (query t ~power)
