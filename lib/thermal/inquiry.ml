module Matrix = Tats_linalg.Matrix
module Lu = Tats_linalg.Lu
module Trace = Tats_util.Trace
module Metricsreg = Tats_util.Metricsreg

type stats = {
  inquiries : int;
  cache_hits : int;
  fp_iterations : int;
  factored_solves : int;
  dense_solves : int;
  delta_evals : int;
  wall_time : float;
}

let empty_stats =
  {
    inquiries = 0;
    cache_hits = 0;
    fp_iterations = 0;
    factored_solves = 0;
    dense_solves = 0;
    delta_evals = 0;
    wall_time = 0.0;
  }

type counters = {
  mutable c_inquiries : int;
  mutable c_cache_hits : int;
  mutable c_fp_iterations : int;
  mutable c_factored_solves : int;
  mutable c_dense_solves : int;
  mutable c_delta_evals : int;
  mutable c_wall_time : float;
}

let fresh_counters () =
  {
    c_inquiries = 0;
    c_cache_hits = 0;
    c_fp_iterations = 0;
    c_factored_solves = 0;
    c_dense_solves = 0;
    c_delta_evals = 0;
    c_wall_time = 0.0;
  }

let snapshot c =
  {
    inquiries = c.c_inquiries;
    cache_hits = c.c_cache_hits;
    fp_iterations = c.c_fp_iterations;
    factored_solves = c.c_factored_solves;
    dense_solves = c.c_dense_solves;
    delta_evals = c.c_delta_evals;
    wall_time = c.c_wall_time;
  }

let reset_counters c =
  c.c_inquiries <- 0;
  c.c_cache_hits <- 0;
  c.c_fp_iterations <- 0;
  c.c_factored_solves <- 0;
  c.c_dense_solves <- 0;
  c.c_delta_evals <- 0;
  c.c_wall_time <- 0.0

(* Fleet-wide counters, accumulated across every engine instance — the
   bench harness creates hundreds of short-lived hotspots during table
   regeneration and wants one aggregate. These live in the process-global
   metrics registry: lock-free atomic bumps from any pool domain, named
   values in [tats --metrics] dumps, and [global_stats] reads them back
   into the legacy record shape. *)
let m_inquiries = Metricsreg.counter "inquiry.inquiries"
let m_cache_hits = Metricsreg.counter "inquiry.cache_hits"
let m_fp_iterations = Metricsreg.counter "inquiry.fp_iterations"
let m_factored_solves = Metricsreg.counter "inquiry.factored_solves"
let m_dense_solves = Metricsreg.counter "inquiry.dense_solves"
let m_delta_evals = Metricsreg.counter "inquiry.delta_evals"
let m_wall = Metricsreg.gauge "inquiry.wall_seconds"
let h_solve_iterations = Metricsreg.histogram "inquiry.solve_iterations"
let h_solve_seconds = Metricsreg.histogram "inquiry.solve_seconds"

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let global_stats () =
  {
    inquiries = Metricsreg.counter_value m_inquiries;
    cache_hits = Metricsreg.counter_value m_cache_hits;
    fp_iterations = Metricsreg.counter_value m_fp_iterations;
    factored_solves = Metricsreg.counter_value m_factored_solves;
    dense_solves = Metricsreg.counter_value m_dense_solves;
    delta_evals = Metricsreg.counter_value m_delta_evals;
    wall_time = Metricsreg.gauge_value m_wall;
  }

let reset_global_stats () =
  Metricsreg.set_counter m_inquiries 0;
  Metricsreg.set_counter m_cache_hits 0;
  Metricsreg.set_counter m_fp_iterations 0;
  Metricsreg.set_counter m_factored_solves 0;
  Metricsreg.set_counter m_dense_solves 0;
  Metricsreg.set_counter m_delta_evals 0;
  Metricsreg.set_gauge m_wall 0.0;
  Metricsreg.reset_histogram h_solve_iterations;
  Metricsreg.reset_histogram h_solve_seconds

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>inquiries        %d@,cache hits       %d (%.1f%%)@,\
     fixed-point iters %d@,factored solves  %d@,dense-path solves %d \
     (avoided %d)@,delta evals      %d@,engine wall time %.3f s@]"
    s.inquiries s.cache_hits
    (if s.inquiries = 0 then 0.0
     else 100.0 *. float_of_int s.cache_hits /. float_of_int s.inquiries)
    s.fp_iterations s.factored_solves s.dense_solves
    (s.dense_solves - s.factored_solves)
    s.delta_evals s.wall_time

type base = { base_power : float array; response : float array }

type t = {
  solver : Steady.t;
  n : int;
  ambient : float;
  cols : float array array; (* cols.(j).(i) = dT_i per W injected at block j *)
  cache : (int64 array, float array * int) Hashtbl.t;
  counters : counters;
  mutable warm : float array option;
  (* Guards [cache], [warm] and [counters]; the influence matrix itself is
     immutable after [create], so concurrent solves never take the lock
     while number-crunching. *)
  lock : Mutex.t;
}

let default_max_iter = 200
let default_tol = 1e-6

(* Cache keys quantize powers to 1 nW, far below any physically meaningful
   difference but fine enough that only repeats of the same computation
   collide — a hit returns temperatures indistinguishable from a resolve. *)
let quantize p = Int64.of_float (Float.round (p *. 1e9))

let cache_key ~dynamic ~idle =
  let n = Array.length dynamic in
  Array.init (2 * n)
    (fun i -> if i < n then quantize dynamic.(i) else quantize idle.(i - n))

let max_cache_entries = 1 lsl 16

let create solver =
  let model = Steady.model solver in
  let n = Rcmodel.n_blocks model in
  (* The whole influence matrix comes from one batched multi-RHS
     back-solve (Lu.solve_many under Steady.influence_columns) — one
     blocked pass over the factors instead of n separate unit solves,
     with element-wise identical columns. Only the first n block rows of
     the first n columns are retained. *)
  let cols =
    Trace.with_span "inquiry.build" (fun () ->
        let full = Steady.influence_columns ~n solver in
        Array.map (fun col -> Array.sub col 0 n) full)
  in
  Metricsreg.add m_factored_solves n;
  let counters = fresh_counters () in
  counters.c_factored_solves <- n;
  {
    solver;
    n;
    ambient = (Rcmodel.package model).Package.ambient;
    cols;
    cache = Hashtbl.create 256;
    counters;
    warm = None;
    lock = Mutex.create ();
  }

let solver t = t.solver
let n_blocks t = t.n
let package t = Rcmodel.package (Steady.model t.solver)
let influence t = Matrix.init t.n t.n (fun i j -> t.cols.(j).(i))
let influence_column t j =
  if j < 0 || j >= t.n then invalid_arg "Inquiry.influence_column: out of range";
  Array.copy t.cols.(j)

let stats t = locked t.lock (fun () -> snapshot t.counters)
let reset_stats t = locked t.lock (fun () -> reset_counters t.counters)

(* ambient + M.p, written into [dst] — the engine's replacement for a
   factored back-substitution. *)
let apply t power dst =
  Array.fill dst 0 t.n t.ambient;
  for j = 0 to t.n - 1 do
    let pj = power.(j) in
    if pj <> 0.0 then begin
      let col = t.cols.(j) in
      for i = 0 to t.n - 1 do
        dst.(i) <- dst.(i) +. (pj *. col.(i))
      done
    end
  done

let temperatures t ~power =
  if Array.length power <> t.n then
    invalid_arg "Inquiry.temperatures: power vector must have one entry per block";
  let dst = Array.make t.n 0.0 in
  apply t power dst;
  dst

(* The per-engine record lives behind the engine lock; the fleet-wide
   registry metrics are atomic, so bumps from concurrent pool workers
   never tear on either side. *)
let bump t f = locked t.lock (fun () -> f t.counters)

let run_query ?(max_iter = default_max_iter) ?(tol = default_tol)
    ?(cache = true) ?init t ~dynamic ~idle =
  if Array.length dynamic <> t.n || Array.length idle <> t.n then
    invalid_arg "Inquiry.query_with_leakage: bad vector length";
  (* Wall clock, not [Sys.time]: process CPU time counts every domain in
     the pool at once, which over-counted by about the domain count under
     [--jobs N]. Wall time per query is additive across domains. *)
  let t0 = Trace.now () in
  bump t (fun c -> c.c_inquiries <- c.c_inquiries + 1);
  Metricsreg.incr m_inquiries;
  (* Cached results were produced with the default convergence settings;
     bypass the cache when the caller overrides them, or asks for a
     stateless query outright. *)
  let cacheable = cache && max_iter = default_max_iter && tol = default_tol in
  let key = if cacheable then Some (cache_key ~dynamic ~idle) else None in
  let cached =
    match key with
    | None -> None
    | Some k -> locked t.lock (fun () -> Hashtbl.find_opt t.cache k)
  in
  let temps =
    match cached with
    | Some (temps, iters) ->
        bump t (fun c ->
            c.c_cache_hits <- c.c_cache_hits + 1;
            (* The dense path has no cache: it would have paid the full
               fixed point for this inquiry again. *)
            c.c_dense_solves <- c.c_dense_solves + 1 + iters);
        Metricsreg.incr m_cache_hits;
        Metricsreg.add m_dense_solves (1 + iters);
        Array.copy temps
    | None ->
        (* The fixed point itself runs without any lock: it only reads the
           immutable influence matrix and writes caller-local buffers. *)
        let temps, iters =
          Trace.with_span "inquiry.solve" (fun () ->
              Steady.fixed_point ~max_iter ~tol ?init
                ~package:(package t)
                ~solve:(apply t) ~dynamic ~idle ())
        in
        bump t (fun c ->
            c.c_fp_iterations <- c.c_fp_iterations + iters;
            c.c_dense_solves <- c.c_dense_solves + 1 + iters);
        Metricsreg.add m_fp_iterations iters;
        Metricsreg.add m_dense_solves (1 + iters);
        Metricsreg.observe h_solve_iterations (float_of_int iters);
        (match key with
        | Some k ->
            locked t.lock (fun () ->
                if Hashtbl.length t.cache >= max_cache_entries then
                  Hashtbl.reset t.cache;
                Hashtbl.replace t.cache k (Array.copy temps, iters);
                t.warm <- Some (Array.copy temps))
        | None -> ());
        temps
  in
  let dt = Trace.now () -. t0 in
  bump t (fun c -> c.c_wall_time <- c.c_wall_time +. dt);
  Metricsreg.add_gauge m_wall dt;
  Metricsreg.observe h_solve_seconds dt;
  temps

let query_with_leakage ?max_iter ?tol ?(warm = false) ?cache t ~dynamic ~idle =
  let init = if warm then locked t.lock (fun () -> t.warm) else None in
  run_query ?max_iter ?tol ?cache ?init t ~dynamic ~idle

let base_response t ~power =
  if Array.length power <> t.n then
    invalid_arg "Inquiry.base_response: power vector must have one entry per block";
  let response = Array.make t.n 0.0 in
  for j = 0 to t.n - 1 do
    let pj = power.(j) in
    if pj <> 0.0 then begin
      let col = t.cols.(j) in
      for i = 0 to t.n - 1 do
        response.(i) <- response.(i) +. (pj *. col.(i))
      done
    end
  done;
  { base_power = Array.copy power; response }

let query_delta ?max_iter ?tol t ~base ~horizon ~pe ~extra ~idle =
  if pe < 0 || pe >= t.n then invalid_arg "Inquiry.query_delta: pe out of range";
  if horizon <= 0.0 then invalid_arg "Inquiry.query_delta: non-positive horizon";
  bump t (fun c -> c.c_delta_evals <- c.c_delta_evals + 1);
  Metricsreg.incr m_delta_evals;
  let dynamic =
    Array.init t.n (fun i ->
        (base.base_power.(i) /. horizon) +. if i = pe then extra else 0.0)
  in
  (* The linear solution of [dynamic], assembled in O(n) from the per-step
     base response instead of a fresh factored solve — the same starting
     point the dense path computes, so the fixed point follows the same
     trajectory. *)
  let col = t.cols.(pe) in
  let init =
    Array.init t.n (fun i ->
        t.ambient +. (base.response.(i) /. horizon) +. (extra *. col.(i)))
  in
  run_query ?max_iter ?tol ~init t ~dynamic ~idle
