(** The HotSpot-style facade the scheduler talks to.

    "HotSpot takes a system floorplanning and the power consumption for each
    function block as input, and generates accurate temperature estimation
    for each block" — this module is exactly that interface, caching the
    factored network so that the thousands of inquiries issued during
    thermal-aware scheduling each cost one back-substitution. *)

type t

val create : ?package:Package.t -> Tats_floorplan.Placement.t -> t
(** Builds and factors the compact RC network for the placement. *)

val n_blocks : t -> int
val package : t -> Package.t
val placement : t -> Tats_floorplan.Placement.t

val query : t -> power:float array -> float array
(** Steady-state block temperatures (°C) for per-block powers (W). *)

val query_with_leakage : t -> dynamic:float array -> idle:float array -> float array
(** Temperature-dependent leakage fixed point (see
    {!Steady.solve_with_leakage}) — the dense reference path: one factored
    back-substitution per fixed-point iteration. *)

val inquire_with_leakage :
  ?warm:bool ->
  ?cache:bool ->
  t ->
  dynamic:float array ->
  idle:float array ->
  float array
(** Same query served by the {!Inquiry} engine: influence-matrix solves, a
    quantized-power cache, optional warm start — the production hot path.
    Matches {!query_with_leakage} within floating-point noise. [warm] and
    [cache] as in {!Inquiry.query_with_leakage}; parallel callers that
    need bit-reproducible results use [~warm:false ~cache:false]. The
    facade itself is thread-safe (lazy engine creation and the inquiry
    counter are mutex-guarded). *)

val inquiry : t -> Inquiry.t
(** The facade's inquiry engine, built (n_blocks factored solves) on first
    use and shared by every subsequent fast-path query. *)

val inquiry_stats : t -> Inquiry.stats
(** Engine counters ({!Inquiry.empty_stats} when no fast-path query was
    ever issued). *)

val average_temperature : t -> power:float array -> float
(** The scalar the paper's thermal-aware DC consumes: the mean of the block
    temperatures for the given power assignment. *)

val peak_temperature : t -> power:float array -> float

val inquiries : t -> int
(** Number of inquiries served so far across both paths — direct
    [query]/[query_with_leakage] calls plus engine inquiries (experiment
    instrumentation). *)

val model : t -> Rcmodel.t
val solver : t -> Steady.t
