(** Steady-state temperature extraction.

    The network matrix is constant for a fixed floorplan, so it is factored
    once and each power inquiry costs a single back-substitution — the
    operation the thermal-aware scheduler performs for every candidate
    (task, PE) pair. *)

type t
(** A factored steady-state solver for one RC model. *)

val create : Rcmodel.t -> t

val solve : t -> power:float array -> float array
(** [solve t ~power] returns node temperatures (length [n_nodes]); the first
    [n_blocks] entries are the block temperatures in °C. [power] is per
    block, W, non-negative. *)

val block_temperatures : t -> power:float array -> float array
(** Just the block entries. *)

val solve_with_leakage :
  ?max_iter:int ->
  ?tol:float ->
  t ->
  dynamic:float array ->
  idle:float array ->
  float array * int
(** Fixed-point iteration coupling temperature and leakage:
    [p_i = dynamic_i + idle_i * exp(beta * (T_i - T_ref))]. Returns block
    temperatures and the iteration count. [max_iter] defaults to 200, [tol]
    (max °C change) to 1e-6. Raises [Failure] on divergence. *)

val fixed_point :
  ?max_iter:int ->
  ?tol:float ->
  ?init:float array ->
  package:Package.t ->
  solve:(float array -> float array -> unit) ->
  dynamic:float array ->
  idle:float array ->
  unit ->
  float array * int
(** The damped leakage fixed point itself, parameterized over the linear
    solve so that {!solve_with_leakage} (dense back-substitution) and the
    influence-matrix fast path of {!Inquiry} run the *same* iteration —
    the basis of their numerical-equivalence guarantee. [solve power dst]
    must write the block temperatures for [power] into [dst] (both of
    [dynamic]'s length). [init] seeds the iteration (e.g. a warm start
    from a previous solution); by default the linear solution of [dynamic]
    is used. Work buffers are allocated once per call, not per iteration. *)

val factored : t -> Tats_linalg.Lu.t
(** The factored network matrix (for influence-column extraction). *)

val influence_columns : ?n:int -> t -> float array array
(** The first [n] columns of the network inverse — column [j] is the
    node temperature response to 1 W injected at node [j] — extracted in
    one batched back-solve ({!Tats_linalg.Lu.solve_many}) instead of a
    loop of unit solves. [n] defaults to [n_nodes] (the full inverse).
    Element-wise identical to
    [Array.init n (Lu.unit_solution (factored t))]; {!Inquiry} builds
    its influence matrix from the block-row prefix of the first
    [n_blocks] columns. *)

val model : t -> Rcmodel.t
