(** The compact thermal RC network built from a placed floorplan.

    Nodes: one per block, one lumped heat spreader, one lumped heat sink.
    The network matrix is [A = L + diag(g_amb)] where [L] is the graph
    Laplacian of the internal conductances and [g_amb] ties the sink to
    ambient; steady state solves [A T = P + g_amb * T_amb]. *)

type t

val build : Package.t -> Tats_floorplan.Placement.t -> t

val n_blocks : t -> int
val n_nodes : t -> int
(** [n_blocks + 2]. *)

val spreader_node : t -> int
val sink_node : t -> int

val system_matrix : t -> Tats_linalg.Matrix.t
(** A copy of [A] (symmetric positive definite). *)

val capacitances : t -> float array
(** Per-node thermal capacitances, J/K. *)

val rhs : t -> power:float array -> float array
(** [rhs ~power] with [power] per block (length [n_blocks], W) builds
    [P + g_amb * T_amb] over all nodes. *)

val rhs_into : t -> power:float array -> float array -> unit
(** Allocation-free [rhs]: writes into a caller-owned buffer of length
    [n_nodes] (hot-path variant for the leakage fixed point). *)

val package : t -> Package.t

val lateral_conductance_between : t -> int -> int -> float
(** Conductance used between two block nodes (0 when not abutting). *)
