(** The thermal inquiry engine.

    The scheduler's hot path issues a HotSpot inquiry for every (ready
    task, PE) candidate at every scheduling step. Solving the network with
    a factored back-substitution inside the leakage fixed point for each of
    them dominates table regeneration, so this engine precomputes, once per
    (package, placement), the {e thermal influence matrix} — the block
    temperature response per unit power injected on each block (one
    {!Tats_linalg.Lu.unit_solution} per block). Every subsequent linear
    solve is then [ambient + M.p], an O(n_blocks²) accumulation with no
    factored solves at all, and within one scheduling step candidates are
    delta-evaluated in O(n_blocks) from a per-step base response
    ({!base_response} / {!query_delta}).

    Numerical equivalence: the engine runs the {e same} damped fixed point
    as {!Steady.solve_with_leakage} ({!Steady.fixed_point}), seeded with
    the same linear solution, so fast-path temperatures match the dense
    path to floating-point noise (well within 1e-6 °C — see
    [test/test_inquiry.ml]).

    Inquiries are cached keyed on the (1 nW-quantized) power vectors;
    repeated inquiries — ubiquitous under [List_sched.run_adaptive]'s
    bisection, which re-schedules the same prefixes over and over — are
    served from the cache. Hit/miss, fixed-point-iteration, factored-solve
    and wall-time counters are kept per engine and globally.

    {1 Thread safety}

    One engine may be queried concurrently from multiple {!Tats_util.Pool}
    worker domains. The influence matrix is immutable after {!create};
    the mutable state — the inquiry cache, the warm-start vector and the
    per-engine counter record — sits behind a per-engine mutex, taken only
    around cache lookups/inserts and counter bumps, never around a
    fixed-point solve. The global aggregate lives in the
    {!Tats_util.Metricsreg} registry as lock-free named counters
    ([inquiry.*]). Two caveats matter for deterministic parallel use:

    - [~warm:true] reads a warm-start vector that concurrent queries race
      to write, so the iteration path (and the result, within [tol])
      depends on scheduling. Deterministic parallel callers must use the
      default [~warm:false].
    - The cache itself is value-safe (a hit returns a bit-exact copy of
      what a fresh solve would produce under default settings), but
      cache-dependent {e counters} become schedule-dependent. Callers that
      assert exact counter values, or want queries with zero shared-state
      traffic, pass [~cache:false] for a fully stateless query. *)

type t

type stats = {
  inquiries : int;  (** leakage inquiries served *)
  cache_hits : int;  (** of which from the cache *)
  fp_iterations : int;  (** damped fixed-point iterations executed *)
  factored_solves : int;  (** LU back-substitutions (influence columns) *)
  dense_solves : int;
      (** back-substitutions the dense path would have needed for the same
          inquiries — the savings baseline *)
  delta_evals : int;  (** O(n) candidate delta-evaluations *)
  wall_time : float;
      (** wall-clock seconds spent inside the engine, summed per query
          ({!Tats_util.Trace.now}; additive across pool domains, unlike the
          process CPU time [Sys.time] used to report here) *)
}

val empty_stats : stats
val pp_stats : Format.formatter -> stats -> unit

val create : Steady.t -> t
(** Builds the influence matrix — [n_blocks] factored solves, once. *)

val solver : t -> Steady.t
val n_blocks : t -> int
val package : t -> Package.t

val influence : t -> Tats_linalg.Matrix.t
(** The influence matrix [M]: entry [(i, j)] is the steady-state
    temperature rise of block [i] per W injected on block [j]. *)

val influence_column : t -> int -> float array
(** Column [j] of [M] — the response profile of heating block [j]. *)

val temperatures : t -> power:float array -> float array
(** Linear (leakage-free) block temperatures [ambient + M.p]; matches
    {!Steady.block_temperatures} to floating-point noise. *)

val query_with_leakage :
  ?max_iter:int ->
  ?tol:float ->
  ?warm:bool ->
  ?cache:bool ->
  t ->
  dynamic:float array ->
  idle:float array ->
  float array
(** Drop-in fast path for {!Steady.solve_with_leakage} (same damping, same
    convergence test, influence-matrix inner solves). [warm] (default
    [false]) seeds the fixed point from this engine's previous converged
    solution when one exists — fewer iterations for a stream of similar
    inquiries, at the price of a (bounded by [tol]) different iteration
    path. Results are cached; non-default [max_iter]/[tol] bypass the
    cache, as does [~cache:false], which additionally skips the cache
    insert and the warm-start store: with [~warm:false ~cache:false] the
    query is fully stateless (counters aside) and its result a pure
    function of the engine's influence matrix and the power vectors — the
    mode parallel Monte-Carlo uses for bit-reproducibility at any domain
    count. *)

type base
(** A per-scheduling-step precomputation: the influence response of a fixed
    power basis (the per-PE cumulated energies). *)

val base_response : t -> power:float array -> base

val query_delta :
  ?max_iter:int ->
  ?tol:float ->
  t ->
  base:base ->
  horizon:float ->
  pe:int ->
  extra:float ->
  idle:float array ->
  float array
(** The paper's candidate inquiry, delta-evaluated: dynamic power
    [base_power / horizon + extra . e_pe], fixed point seeded with the
    O(n_blocks) linear combination [ambient + response/horizon +
    extra . col(pe)] instead of a fresh solve. Semantics identical to
    building that vector and calling {!query_with_leakage}. *)

val stats : t -> stats
val reset_stats : t -> unit

val global_stats : unit -> stats
(** Aggregate over every engine created since the last
    {!reset_global_stats} — the bench harness' view. *)

val reset_global_stats : unit -> unit
