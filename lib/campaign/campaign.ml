module Fsio = Tats_util.Fsio
module Pool = Tats_util.Pool
module Trace = Tats_util.Trace
module Metricsreg = Tats_util.Metricsreg
module Graph = Tats_taskgraph.Graph
module Generator = Tats_taskgraph.Generator
module Benchmarks = Tats_taskgraph.Benchmarks
module Catalog = Tats_techlib.Catalog
module Platform = Tats_techlib.Platform
module Package = Tats_thermal.Package
module Policy = Tats_sched.Policy
module Constraints = Tats_sched.Constraints
module Schedule = Tats_sched.Schedule
module Metrics = Tats_sched.Metrics
module Flow = Tats_cosynth.Flow
module Json = Tats_serve.Json

type graph_spec =
  | Bench of int
  | Generated of { seed : int; n_tasks : int; n_edges : int; deadline : float }

type arch_spec = Platform of int | Hetero of string | Cosynth

type platform_spec = {
  arch : arch_spec;
  ambient : float;
  power_budget : float option;
  pins : (int * Constraints.pin) list;
  isolation : (int * int) list;
}

type spec = {
  name : string;
  graphs : graph_spec list;
  policies : Policy.t list;
  platforms : platform_spec list;
}

type cell = { graph : graph_spec; policy : Policy.t; platform : platform_spec }

type result = {
  makespan : float;
  total_power : float;
  max_temp : float;
  avg_temp : float;
  deadline : float;
  deadline_met : bool;
  within_budget : bool;
}

(* ------------------------------------------------------------------ *)
(* Labels *)

let graph_label = function
  | Bench i when i >= 0 && i < Array.length Benchmarks.descriptors ->
      Benchmarks.descriptors.(i).Benchmarks.bench_name
  | Bench i -> Printf.sprintf "bench%d" i
  | Generated { seed; n_tasks; _ } -> Printf.sprintf "gen%dx%d" seed n_tasks

let arch_label = function
  | Platform n -> Printf.sprintf "p%d" n
  | Hetero name -> name
  | Cosynth -> "cosynth"

let platform_label (p : platform_spec) =
  let base = Printf.sprintf "%s@%gC" (arch_label p.arch) p.ambient in
  let base =
    match p.power_budget with
    | None -> base
    | Some b -> Printf.sprintf "%s/b%g" base b
  in
  if p.pins = [] && p.isolation = [] then base
  else
    Printf.sprintf "%s/c%d.%d" base (List.length p.pins)
      (List.length p.isolation)

let cell_label (c : cell) =
  Printf.sprintf "%s/%s/%s" (graph_label c.graph) (Policy.name c.policy)
    (platform_label c.platform)

(* ------------------------------------------------------------------ *)
(* Canonical JSON codecs. Encoding fixes both the key order and the float
   spelling (Json.to_string prints shortest-round-trip forms), so every
   value has exactly one canonical byte string — the property the content
   addresses, artifact digests and manifest byte-comparisons stand on. *)

let ( let* ) = Result.bind

let obj_field key j =
  match Json.mem key j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing key %S" key)

let num_field key j =
  let* v = obj_field key j in
  match Json.num v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%S: expected a number" key)

let int_field key j =
  let* f = num_field key j in
  let i = int_of_float f in
  if float_of_int i = f then Ok i
  else Error (Printf.sprintf "%S: expected an integer" key)

let str_field key j =
  let* v = obj_field key j in
  match Json.str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "%S: expected a string" key)

let bool_field key j =
  let* v = obj_field key j in
  match Json.bool v with
  | Some b -> Ok b
  | None -> Error (Printf.sprintf "%S: expected a boolean" key)

let arr_field key decode j =
  let* v = obj_field key j in
  match Json.arr v with
  | None -> Error (Printf.sprintf "%S: expected an array" key)
  | Some items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest ->
            let* d = decode x in
            go (d :: acc) rest
      in
      go [] items

let num f = Json.Num f
let int i = Json.Num (float_of_int i)

let graph_to_json = function
  | Bench i -> Json.Obj [ ("bench", int i) ]
  | Generated { seed; n_tasks; n_edges; deadline } ->
      Json.Obj
        [
          ("seed", int seed);
          ("n_tasks", int n_tasks);
          ("n_edges", int n_edges);
          ("deadline", num deadline);
        ]

let graph_of_json j =
  match Json.mem "bench" j with
  | Some _ ->
      let* i = int_field "bench" j in
      Ok (Bench i)
  | None ->
      let* seed = int_field "seed" j in
      let* n_tasks = int_field "n_tasks" j in
      let* n_edges = int_field "n_edges" j in
      let* deadline = num_field "deadline" j in
      Ok (Generated { seed; n_tasks; n_edges; deadline })

(* The heterogeneity extensions (hetero arch, pins, isolation) are
   encoded only when present, so pre-extension platform specs keep their
   historical canonical bytes — and therefore their cell ids. *)
let platform_to_json (p : platform_spec) =
  let arch =
    match p.arch with
    | Platform n -> [ ("arch", Json.Str "platform"); ("n_pes", int n) ]
    | Hetero name -> [ ("arch", Json.Str "hetero"); ("platform", Json.Str name) ]
    | Cosynth -> [ ("arch", Json.Str "cosynth") ]
  in
  let budget =
    match p.power_budget with None -> [] | Some b -> [ ("power_budget", num b) ]
  in
  let pins =
    match p.pins with
    | [] -> []
    | pins ->
        [
          ( "pins",
            Json.Arr
              (List.map
                 (fun (t, pin) ->
                   match pin with
                   | Constraints.To_pe pe ->
                       Json.Obj [ ("task", int t); ("pe", int pe) ]
                   | Constraints.To_kind k ->
                       Json.Obj [ ("task", int t); ("kind", int k) ])
                 pins) );
        ]
  in
  let isolation =
    match p.isolation with
    | [] -> []
    | iso ->
        [
          ( "isolation",
            Json.Arr
              (List.map
                 (fun (t, c) -> Json.Obj [ ("task", int t); ("class", int c) ])
                 iso) );
        ]
  in
  Json.Obj (arch @ [ ("ambient", num p.ambient) ] @ budget @ pins @ isolation)

let platform_of_json j =
  let* arch_name = str_field "arch" j in
  let* arch =
    match arch_name with
    | "platform" ->
        let* n = int_field "n_pes" j in
        Ok (Platform n)
    | "hetero" ->
        let* name = str_field "platform" j in
        Ok (Hetero name)
    | "cosynth" -> Ok Cosynth
    | s -> Error (Printf.sprintf "unknown arch %S" s)
  in
  let* ambient = num_field "ambient" j in
  let* power_budget =
    match Json.mem "power_budget" j with
    | None -> Ok None
    | Some v -> (
        match Json.num v with
        | Some b -> Ok (Some b)
        | None -> Error "\"power_budget\": expected a number")
  in
  let* pins =
    match Json.mem "pins" j with
    | None -> Ok []
    | Some _ ->
        arr_field "pins"
          (fun item ->
            let* t = int_field "task" item in
            match (Json.mem "pe" item, Json.mem "kind" item) with
            | Some _, None ->
                let* pe = int_field "pe" item in
                Ok (t, Constraints.To_pe pe)
            | None, Some _ ->
                let* k = int_field "kind" item in
                Ok (t, Constraints.To_kind k)
            | _ -> Error "pin wants exactly one of \"pe\" or \"kind\"")
          j
  in
  let* isolation =
    match Json.mem "isolation" j with
    | None -> Ok []
    | Some _ ->
        arr_field "isolation"
          (fun item ->
            let* t = int_field "task" item in
            let* c = int_field "class" item in
            Ok (t, c))
          j
  in
  Ok { arch; ambient; power_budget; pins; isolation }

let policy_of_json j =
  match Json.str j with
  | None -> Error "policy: expected a string"
  | Some s -> (
      match Policy.of_name s with
      | Some p -> Ok p
      | None -> Error (Printf.sprintf "unknown policy %S" s))

let cell_to_json (c : cell) =
  Json.Obj
    [
      ("graph", graph_to_json c.graph);
      ("policy", Json.Str (Policy.name c.policy));
      ("platform", platform_to_json c.platform);
    ]

let cell_of_json j =
  let* gj = obj_field "graph" j in
  let* graph = graph_of_json gj in
  let* pj = obj_field "policy" j in
  let* policy = policy_of_json pj in
  let* fj = obj_field "platform" j in
  let* platform = platform_of_json fj in
  Ok { graph; policy; platform }

let result_to_json (r : result) =
  Json.Obj
    [
      ("makespan", num r.makespan);
      ("total_power", num r.total_power);
      ("max_temp", num r.max_temp);
      ("avg_temp", num r.avg_temp);
      ("deadline", num r.deadline);
      ("deadline_met", Json.Bool r.deadline_met);
      ("within_budget", Json.Bool r.within_budget);
    ]

let result_of_json j =
  let* makespan = num_field "makespan" j in
  let* total_power = num_field "total_power" j in
  let* max_temp = num_field "max_temp" j in
  let* avg_temp = num_field "avg_temp" j in
  let* deadline = num_field "deadline" j in
  let* deadline_met = bool_field "deadline_met" j in
  let* within_budget = bool_field "within_budget" j in
  Ok
    {
      makespan;
      total_power;
      max_temp;
      avg_temp;
      deadline;
      deadline_met;
      within_budget;
    }

let spec_to_json (s : spec) =
  Json.Obj
    [
      ("name", Json.Str s.name);
      ("graphs", Json.Arr (List.map graph_to_json s.graphs));
      ( "policies",
        Json.Arr (List.map (fun p -> Json.Str (Policy.name p)) s.policies) );
      ("platforms", Json.Arr (List.map platform_to_json s.platforms));
    ]

let spec_to_string s = Json.to_string (spec_to_json s)

let spec_of_string text =
  let* j = Json.of_string text in
  let* name = str_field "name" j in
  let* graphs = arr_field "graphs" graph_of_json j in
  let* policies = arr_field "policies" policy_of_json j in
  let* platforms = arr_field "platforms" platform_of_json j in
  Ok { name; graphs; policies; platforms }

let digest_hex s = Digest.to_hex (Digest.string s)
let cell_id c = digest_hex (Json.to_string (cell_to_json c))
let spec_digest_of s = digest_hex (spec_to_string s)

(* ------------------------------------------------------------------ *)
(* Expansion *)

let validate_graph g =
  match g with
  | Bench i ->
      if i < 0 || i >= Array.length Benchmarks.descriptors then
        invalid_arg (Printf.sprintf "Campaign: benchmark index %d out of range" i)
  | Generated { n_tasks; n_edges; deadline; _ } ->
      if n_tasks < 1 then invalid_arg "Campaign: generated graph needs tasks";
      let lo, hi = Generator.feasible_edges ~n_tasks in
      if n_edges < lo || n_edges > hi then
        invalid_arg
          (Printf.sprintf "Campaign: %d edges outside feasible [%d, %d]" n_edges
             lo hi);
      if not (Float.is_finite deadline) || deadline <= 0.0 then
        invalid_arg "Campaign: generated graph needs a positive deadline"

let validate_platform (p : platform_spec) =
  (match p.arch with
  | Platform n ->
      if n < 1 then invalid_arg "Campaign: platform needs at least one PE"
  | Hetero name ->
      if Option.is_none (Catalog.platform_named name) then
        invalid_arg
          (Printf.sprintf "Campaign: unknown platform %S (want one of %s)" name
             (String.concat ", " (Catalog.platform_names ())))
  | Cosynth -> ());
  (match p.arch with
  | Cosynth when p.pins <> [] || p.isolation <> [] ->
      invalid_arg
        "Campaign: pins/isolation require the platform or hetero architecture"
  | _ -> ());
  if not (Float.is_finite p.ambient) then
    invalid_arg "Campaign: ambient must be finite";
  match p.power_budget with
  | Some b when (not (Float.is_finite b)) || b <= 0.0 ->
      invalid_arg "Campaign: power budget must be positive"
  | _ -> ()

let expand (s : spec) =
  if s.graphs = [] || s.policies = [] || s.platforms = [] then
    invalid_arg "Campaign.expand: every axis needs at least one point";
  List.iter validate_graph s.graphs;
  List.iter validate_platform s.platforms;
  let cells =
    List.concat_map
      (fun graph ->
        List.concat_map
          (fun policy ->
            List.map (fun platform -> { graph; policy; platform }) s.platforms)
          s.policies)
      s.graphs
  in
  let seen = Hashtbl.create (2 * List.length cells) in
  List.iter
    (fun c ->
      let id = cell_id c in
      if Hashtbl.mem seen id then
        invalid_arg
          (Printf.sprintf "Campaign.expand: duplicate cell %s" (cell_label c));
      Hashtbl.add seen id ())
    cells;
  cells

let n_cells (s : spec) =
  List.length s.graphs * List.length s.policies * List.length s.platforms

(* ------------------------------------------------------------------ *)
(* Builtin specs *)

let table_graphs = [ Bench 0; Bench 1; Bench 2; Bench 3 ]

let plat n_pes ambient =
  {
    arch = Platform n_pes;
    ambient;
    power_budget = None;
    pins = [];
    isolation = [];
  }

let cosy ambient =
  { arch = Cosynth; ambient; power_budget = None; pins = []; isolation = [] }

let het ?(pins = []) ?(isolation = []) name ambient =
  { arch = Hetero name; ambient; power_budget = None; pins; isolation }

let builtin = function
  | "table1" ->
      (* Table 1: baseline + the three power heuristics on both flows. *)
      Some
        {
          name = "table1";
          graphs = table_graphs;
          policies =
            [
              Policy.Baseline;
              Policy.Power_aware Policy.Min_task_power;
              Policy.Power_aware Policy.Min_pe_average_power;
              Policy.Power_aware Policy.Min_task_energy;
            ];
          platforms = [ cosy 45.0; plat 4 45.0 ];
        }
  | "table2" ->
      Some
        {
          name = "table2";
          graphs = table_graphs;
          policies =
            [ Policy.Power_aware Policy.Min_task_energy; Policy.Thermal_aware ];
          platforms = [ cosy 45.0 ];
        }
  | "table3" ->
      Some
        {
          name = "table3";
          graphs = table_graphs;
          policies =
            [ Policy.Power_aware Policy.Min_task_energy; Policy.Thermal_aware ];
          platforms = [ plat 4 45.0 ];
        }
  | "hetero" ->
      (* The heterogeneity gate fixture: a homogeneous control cell, its
         degenerate typed twin (std4 must reproduce p4's numbers), both
         mixed builtins, and one constrained cell exercising kind pins
         plus two criticality classes. *)
      Some
        {
          name = "hetero";
          graphs = [ Bench 0; Bench 2 ];
          policies = [ Policy.Baseline; Policy.Thermal_aware ];
          platforms =
            [
              plat 4 45.0;
              het "std4" 45.0;
              het "biglittle4" 45.0;
              het "mixed6" 45.0
                ~pins:[ (0, Constraints.To_kind 0) ]
                ~isolation:[ (1, 0); (2, 1) ];
            ];
        }
  | "golden" ->
      (* Small and mixed on purpose: one paper benchmark, one generated
         DAG, both platform ambients, one budget-annotated point — the
         golden pins the whole report rendering path. *)
      Some
        {
          name = "golden";
          graphs =
            [
              Bench 0;
              Generated { seed = 11; n_tasks = 30; n_edges = 45; deadline = 1200.0 };
            ];
          policies =
            [
              Policy.Baseline;
              Policy.Power_aware Policy.Min_task_energy;
              Policy.Thermal_aware;
            ];
          platforms =
            [
              plat 4 45.0;
              {
                arch = Platform 4;
                ambient = 55.0;
                power_budget = Some 21.0;
                pins = [];
                isolation = [];
              };
            ];
        }
  | "sweep1k" ->
      (* 18 graphs x 5 policies x 12 platform points = 1080 cells — the
         bench phase's >= 1000-cell scale workload. *)
      Some
        {
          name = "sweep1k";
          graphs =
            List.init 18 (fun i ->
                Generated
                  { seed = 100 + i; n_tasks = 16; n_edges = 24; deadline = 800.0 });
          policies = Policy.all;
          platforms =
            List.concat_map
              (fun n_pes ->
                List.map (fun ambient -> plat n_pes ambient)
                  [ 35.0; 45.0; 55.0; 65.0 ])
              [ 2; 4; 6 ];
        }
  | _ -> None

let builtin_names = [ "table1"; "table2"; "table3"; "golden"; "hetero"; "sweep1k" ]

(* ------------------------------------------------------------------ *)
(* Cell execution *)

let graph_of_spec g =
  match g with
  | Bench i -> Benchmarks.load i
  | Generated { seed; n_tasks; n_edges; deadline } ->
      let gspec =
        { (Generator.scaled_spec ~n_tasks) with Generator.n_edges; deadline }
      in
      Generator.generate ~seed ~name:(graph_label g) gspec

let run_cell (c : cell) : result =
  Trace.with_span "campaign.cell" @@ fun () ->
  let graph = graph_of_spec c.graph in
  let package = { Package.default with Package.ambient = c.platform.ambient } in
  let constraints =
    { Constraints.pins = c.platform.pins; isolation = c.platform.isolation }
  in
  let outcome =
    match c.platform.arch with
    | Platform n_pes ->
        Flow.run_platform ~n_pes ~constraints ~package ~graph
          ~lib:(Catalog.platform_library ()) ~policy:c.policy ()
    | Hetero name ->
        (* expand validated the name against the catalog already. *)
        let platform = Option.get (Catalog.platform_named name) in
        Flow.run_platform ~platform ~constraints ~package ~graph
          ~lib:(Catalog.library_for platform) ~policy:c.policy ()
    | Cosynth ->
        Flow.run_cosynthesis ~package ~graph ~lib:(Catalog.default_library ())
          ~policy:c.policy ()
  in
  let makespan = outcome.Flow.schedule.Schedule.makespan in
  let total_power = outcome.Flow.row.Metrics.total_power in
  let deadline = Graph.deadline graph in
  {
    makespan;
    total_power;
    max_temp = outcome.Flow.row.Metrics.max_temp;
    avg_temp = outcome.Flow.row.Metrics.avg_temp;
    deadline;
    deadline_met = makespan <= deadline;
    within_budget =
      (match c.platform.power_budget with
      | None -> true
      | Some b -> total_power <= b);
  }

(* ------------------------------------------------------------------ *)
(* Artifacts *)

let cells_dir dir = Filename.concat dir "cells"
let artifact_path dir id = Filename.concat (cells_dir dir) (id ^ ".json")
let manifest_path dir = Filename.concat dir "manifest.json"

(* The digest field covers the canonical encoding of everything before it,
   recomputed from the *decoded* values on load — so a flipped byte
   anywhere (id, spelling of a float, a truncated tail) fails validation
   and the cell is recomputed rather than trusted. *)
let artifact_fields ~campaign (c : cell) (r : result) =
  [
    ("id", Json.Str (cell_id c));
    ("campaign", Json.Str campaign);
    ("cell", cell_to_json c);
    ("result", result_to_json r);
  ]

let artifact_string ~campaign c r =
  let fields = artifact_fields ~campaign c r in
  let digest = digest_hex (Json.to_string (Json.Obj fields)) in
  Json.to_string (Json.Obj (fields @ [ ("digest", Json.Str digest) ]))

let decode_artifact text =
  let* j = Json.of_string text in
  let* id = str_field "id" j in
  let* campaign = str_field "campaign" j in
  let* cj = obj_field "cell" j in
  let* c = cell_of_json cj in
  let* rj = obj_field "result" j in
  let* r = result_of_json rj in
  let* digest = str_field "digest" j in
  let canonical = Json.to_string (Json.Obj (artifact_fields ~campaign c r)) in
  if digest <> digest_hex canonical then Error "artifact digest mismatch"
  else if id <> cell_id c then Error "artifact id does not address its cell"
  else Ok (campaign, c, r)

let artifact_status ~campaign (c : cell) path =
  match Fsio.read_file path with
  | None -> `Missing
  | Some bytes -> (
      match decode_artifact bytes with
      | Ok (camp, c2, _) when camp = campaign && cell_id c2 = cell_id c -> `Valid
      | Ok _ | Error _ -> `Corrupt)

(* ------------------------------------------------------------------ *)
(* Manifest *)

type entry = {
  index : int;
  id : string;
  artifact_digest : string;
  cell : cell;
  result : result;
}

type manifest = { campaign : string; spec_digest : string; entries : entry list }

let entry_to_json (e : entry) =
  Json.Obj
    [
      ("index", int e.index);
      ("id", Json.Str e.id);
      ("artifact_digest", Json.Str e.artifact_digest);
      ("cell", cell_to_json e.cell);
      ("result", result_to_json e.result);
    ]

let entry_of_json j =
  let* index = int_field "index" j in
  let* id = str_field "id" j in
  let* artifact_digest = str_field "artifact_digest" j in
  let* cj = obj_field "cell" j in
  let* cell = cell_of_json cj in
  let* rj = obj_field "result" j in
  let* result = result_of_json rj in
  Ok { index; id; artifact_digest; cell; result }

let manifest_to_string (m : manifest) =
  Json.to_string
    (Json.Obj
       [
         ("campaign", Json.Str m.campaign);
         ("spec_digest", Json.Str m.spec_digest);
         ("n_cells", int (List.length m.entries));
         ("cells", Json.Arr (List.map entry_to_json m.entries));
       ])

let manifest_of_string text =
  let* j = Json.of_string text in
  let* campaign = str_field "campaign" j in
  let* spec_digest = str_field "spec_digest" j in
  let* n = int_field "n_cells" j in
  let* entries = arr_field "cells" entry_of_json j in
  if List.length entries <> n then Error "n_cells disagrees with the cells array"
  else Ok { campaign; spec_digest; entries }

let load_manifest ~dir =
  match Fsio.read_file (manifest_path dir) with
  | None -> Error (Printf.sprintf "no manifest in %s (campaign incomplete?)" dir)
  | Some bytes -> manifest_of_string bytes

(* Only a complete, fully-valid artifact store yields a manifest: partial
   stores (other shards still running, interrupted campaigns) stay
   manifest-less until the last cell lands. *)
let build_manifest ~dir (s : spec) cells =
  let entries =
    List.mapi
      (fun index cell ->
        let id = cell_id cell in
        match Fsio.read_file (artifact_path dir id) with
        | None -> None
        | Some bytes -> (
            match decode_artifact bytes with
            | Ok (campaign, c, result) when campaign = s.name && cell_id c = id
              ->
                Some
                  {
                    index;
                    id;
                    artifact_digest = digest_hex bytes;
                    cell;
                    result;
                  }
            | Ok _ | Error _ -> None))
      cells
  in
  if List.for_all Option.is_some entries then
    Some
      {
        campaign = s.name;
        spec_digest = spec_digest_of s;
        entries = List.filter_map Fun.id entries;
      }
  else None

(* ------------------------------------------------------------------ *)
(* Running campaigns *)

type run_report = {
  total : int;
  shard_cells : int;
  computed : int;
  reused : int;
  invalid : int;
  manifest_written : bool;
}

let run ?pool ?(shards = 1) ?(shard = 0) ~dir (s : spec) =
  if shards < 1 then invalid_arg "Campaign.run: shards must be >= 1";
  if shard < 0 || shard >= shards then
    invalid_arg "Campaign.run: shard must be in [0, shards)";
  Trace.with_span "campaign.run" @@ fun () ->
  let cells = expand s in
  let total = List.length cells in
  Fsio.mkdir_p (cells_dir dir);
  let mine = List.filteri (fun i _ -> i mod shards = shard) cells in
  let reused = ref 0 and invalid = ref 0 in
  let todo =
    List.filter
      (fun c ->
        match artifact_status ~campaign:s.name c (artifact_path dir (cell_id c)) with
        | `Valid ->
            incr reused;
            false
        | `Missing -> true
        | `Corrupt ->
            incr invalid;
            true)
      mine
  in
  let compute c =
    let r = run_cell c in
    Fsio.write_atomic (artifact_path dir (cell_id c))
      (artifact_string ~campaign:s.name c r)
  in
  let todo = Array.of_list todo in
  (match pool with
  | Some pool -> ignore (Pool.parallel_map pool compute todo : unit array)
  | None -> Array.iter compute todo);
  Metricsreg.add (Metricsreg.counter "campaign.cells_computed") (Array.length todo);
  Metricsreg.add (Metricsreg.counter "campaign.cells_reused") !reused;
  Metricsreg.add (Metricsreg.counter "campaign.artifacts_invalid") !invalid;
  let manifest_written =
    match build_manifest ~dir s cells with
    | None -> false
    | Some m ->
        Trace.with_span "campaign.manifest" (fun () ->
            Fsio.write_atomic (manifest_path dir) (manifest_to_string m));
        Metricsreg.incr (Metricsreg.counter "campaign.manifests_written");
        true
  in
  {
    total;
    shard_cells = List.length mine;
    computed = Array.length todo;
    reused = !reused;
    invalid = !invalid;
    manifest_written;
  }

(* ------------------------------------------------------------------ *)
(* Gating *)

type tolerances = {
  tol_makespan : float;
  tol_power : float;
  tol_max_temp : float;
  tol_avg_temp : float;
}

let zero_tolerance =
  { tol_makespan = 0.0; tol_power = 0.0; tol_max_temp = 0.0; tol_avg_temp = 0.0 }

type finding = {
  g_cell : string;
  g_metric : string;
  g_base : float;
  g_cand : float;
  g_tol : float;
}

type gate_report = {
  compared : int;
  clean : int;
  drifted : finding list;
  regressed : finding list;
  missing : string list;
  extra : string list;
}

let metric_checks (t : tolerances) =
  [
    ("makespan", (fun (r : result) -> r.makespan), t.tol_makespan);
    ("total_power", (fun (r : result) -> r.total_power), t.tol_power);
    ("max_temp", (fun (r : result) -> r.max_temp), t.tol_max_temp);
    ("avg_temp", (fun (r : result) -> r.avg_temp), t.tol_avg_temp);
  ]

let gate ~tol ~(baseline : manifest) ~(candidate : manifest) =
  let cand = Hashtbl.create (2 * List.length candidate.entries) in
  List.iter (fun (e : entry) -> Hashtbl.replace cand e.id e) candidate.entries;
  let base_ids = Hashtbl.create (2 * List.length baseline.entries) in
  List.iter
    (fun (e : entry) -> Hashtbl.replace base_ids e.id ())
    baseline.entries;
  let compared = ref 0 and clean = ref 0 in
  let drifted = ref [] and regressed = ref [] and missing = ref [] in
  List.iter
    (fun (b : entry) ->
      match Hashtbl.find_opt cand b.id with
      | None -> missing := cell_label b.cell :: !missing
      | Some c ->
          incr compared;
          let worse = ref false in
          List.iter
            (fun (metric, get, m_tol) ->
              let delta = get c.result -. get b.result in
              if delta > 0.0 then begin
                worse := true;
                let f =
                  {
                    g_cell = cell_label b.cell;
                    g_metric = metric;
                    g_base = get b.result;
                    g_cand = get c.result;
                    g_tol = m_tol;
                  }
                in
                if delta > m_tol then regressed := f :: !regressed
                else drifted := f :: !drifted
              end)
            (metric_checks tol);
          if not !worse then incr clean)
    baseline.entries;
  let extra =
    List.filter_map
      (fun (e : entry) ->
        if Hashtbl.mem base_ids e.id then None else Some (cell_label e.cell))
      candidate.entries
  in
  {
    compared = !compared;
    clean = !clean;
    drifted = List.rev !drifted;
    regressed = List.rev !regressed;
    missing = List.rev !missing;
    extra;
  }

let gate_passes (r : gate_report) = r.regressed = [] && r.missing = []

(* ------------------------------------------------------------------ *)
(* Summaries *)

type summary = { campaign_name : string; cells : (cell * result) list }

let summarize (m : manifest) =
  {
    campaign_name = m.campaign;
    cells = List.map (fun (e : entry) -> (e.cell, e.result)) m.entries;
  }

let collect (s : spec) =
  Trace.with_span "campaign.collect" @@ fun () ->
  { campaign_name = s.name; cells = List.map (fun c -> (c, run_cell c)) (expand s) }
