(** Sharded, resumable experiment campaigns with regression gating.

    A campaign is the cartesian product of three axes — task graphs
    (paper benchmarks or TGFF-style generated DAGs, up to thousands of
    nodes), scheduling policies, and platforms (architecture x ambient x
    power budget) — expanded into a deterministic, duplicate-free list of
    {e cells}. Each cell runs the canonical {!Tats_cosynth.Flow} once and
    persists one JSON artifact named by the MD5 of the cell's canonical
    spec encoding, so the artifact store is content-addressed: the same
    cell always lands in the same file with the same bytes, regardless of
    pool size, shard assignment, or how many times the campaign was
    interrupted and resumed.

    {b Resume semantics.} {!run} skips cells whose artifact already
    exists and validates (embedded digest and id both check out);
    missing, truncated or corrupted artifacts are recomputed, never
    trusted. Artifacts are written atomically as each cell finishes, so a
    killed campaign loses at most in-flight cells. When every cell of the
    full expansion is present and valid, {!run} writes [manifest.json] —
    a canonical summary whose bytes depend only on the spec and the cell
    results, which is what "resume is bit-identical to an uninterrupted
    run" means operationally (and what the crash/resume differential test
    checks file by file).

    {b Sharding.} [run ~shards:n ~shard:k] computes only cells whose
    expansion index is [k mod n]; shards share nothing but the artifact
    directory. The last shard to observe a complete store writes the
    manifest; concurrent writers are benign because the bytes agree.

    {b Gating.} {!gate} diffs a candidate manifest against a stored
    baseline, cell by cell (matched on content address): any
    higher-is-worse metric above its per-metric tolerance is a
    regression, and regressions or baseline cells missing from the
    candidate fail the gate — the CLI maps that to exit 2. *)

module Policy = Tats_sched.Policy
module Constraints = Tats_sched.Constraints

(** {1 Campaign specs} *)

type graph_spec =
  | Bench of int  (** index into {!Tats_taskgraph.Benchmarks.descriptors} *)
  | Generated of { seed : int; n_tasks : int; n_edges : int; deadline : float }
      (** {!Tats_taskgraph.Generator} DAG; data range and task types come
          from {!Tats_taskgraph.Generator.scaled_spec}-compatible
          defaults, so generated graphs schedule against the stock
          libraries. *)

type arch_spec =
  | Platform of int  (** Figure 1(b) fixed architecture with [n] PEs *)
  | Hetero of string
      (** a typed, possibly heterogeneous builtin platform by name
          ({!Tats_techlib.Catalog.platform_named}); scheduled with
          {!Tats_techlib.Catalog.library_for}'s per-kind WCET columns *)
  | Cosynth  (** Figure 1(a) co-synthesis from the heterogeneous catalogue *)

type platform_spec = {
  arch : arch_spec;
  ambient : float;  (** °C, threaded through {!Tats_thermal.Package} *)
  power_budget : float option;
      (** W; when set, the cell result records whether total power stayed
          within it ([within_budget]) — an evaluation annotation, not a
          scheduling constraint *)
  pins : (int * Constraints.pin) list;
      (** task affinities, forwarded to the scheduler; [Platform]/[Hetero]
          architectures only *)
  isolation : (int * int) list;
      (** task -> criticality class; classes never share a PE *)
}

type spec = {
  name : string;
  graphs : graph_spec list;
  policies : Policy.t list;
  platforms : platform_spec list;
}

type cell = { graph : graph_spec; policy : Policy.t; platform : platform_spec }

val expand : spec -> cell list
(** The full cartesian product in a pinned order: graphs outermost,
    platforms innermost. Raises [Invalid_argument] on an invalid spec —
    an empty axis, an out-of-range benchmark index, an infeasible
    generated-graph spec, or duplicate cells. *)

val n_cells : spec -> int
(** [List.length (expand spec)] without validating. *)

val cell_id : cell -> string
(** Content address: the MD5 hex digest of the cell's canonical JSON
    encoding. Two cells share an id iff they are the same point of the
    product space. *)

val graph_label : graph_spec -> string
(** ["Bm1"] / ["gen11x30"] — stable human-readable name. *)

val platform_label : platform_spec -> string
(** ["p4@45C"] / ["biglittle4@45C"] / ["cosynth@45C"], with ["/b<watts>"]
    appended when a power budget is set and ["/c<pins>.<classes>"] when
    constraints are. *)

val cell_label : cell -> string
(** [<graph>/<policy>/<platform>], e.g. ["Bm1/thermal/p4@45C"] — the
    name used in reports and gate findings. *)

(** {1 Spec serialization and builtins} *)

val spec_to_string : spec -> string
(** Canonical one-line JSON encoding — the on-disk spec-file format, and
    the preimage of the manifest's [spec_digest]. *)

val spec_of_string : string -> (spec, string) result
(** Inverse of {!spec_to_string}; also accepts hand-written spec files
    (missing [power_budget] means none). Shape errors carry the
    offending key. *)

val builtin : string -> spec option
(** Pinned specs: ["table1"]/["table2"]/["table3"] are the paper's
    Tables 1–3 as campaigns (same axes as
    {!Core.Experiments.table1}-[table3]); ["golden"] is the small mixed
    platform/ambient/budget campaign pinned by
    [test/goldens/campaign.golden]; ["hetero"] is the heterogeneity gate
    fixture (homogeneous control, degenerate [std4] twin, both mixed
    builtins, one pinned-and-isolated cell); ["sweep1k"] is a 1080-cell
    generated sweep (18 seeded 16-task DAGs x all 5 policies x 12
    platform points) — the bench phase's scale workload. *)

val builtin_names : string list

(** {1 Running cells} *)

type result = {
  makespan : float;
  total_power : float;  (** W — the paper's Total Pow column *)
  max_temp : float;  (** °C *)
  avg_temp : float;  (** °C *)
  deadline : float;
  deadline_met : bool;
  within_budget : bool;  (** true when no budget is set *)
}

val run_cell : cell -> result
(** Execute one cell through the canonical flow ({!Tats_cosynth.Flow},
    stock libraries, ambient from the platform spec). Pure given the
    cell: bit-identical floats on every call, which is what makes the
    artifact store content-stable. *)

type run_report = {
  total : int;  (** cells in the full expansion *)
  shard_cells : int;  (** cells this shard is responsible for *)
  computed : int;  (** cells actually executed (fresh + recovered) *)
  reused : int;  (** valid artifacts skipped *)
  invalid : int;  (** corrupt/truncated artifacts detected and re-run *)
  manifest_written : bool;
}

val run :
  ?pool:Tats_util.Pool.t ->
  ?shards:int ->
  ?shard:int ->
  dir:string ->
  spec ->
  run_report
(** Run (or resume — same code path) a campaign shard into [dir].
    Artifacts land in [dir/cells/<id>.json] as each cell finishes;
    missing cells of this shard are executed on [pool] when given
    (deterministically — results do not depend on jobs count), inline
    otherwise. Raises [Invalid_argument] when [shard]/[shards] are out
    of range (shards >= 1, 0 <= shard < shards) or the spec is invalid. *)

(** {1 Artifacts and manifests} *)

val artifact_path : string -> string -> string
(** [artifact_path dir id] — where cell [id]'s artifact lives. *)

val manifest_path : string -> string

type entry = {
  index : int;  (** position in the expansion order *)
  id : string;
  artifact_digest : string;  (** MD5 hex of the artifact file's bytes *)
  cell : cell;
  result : result;
}

type manifest = {
  campaign : string;
  spec_digest : string;
  entries : entry list;  (** in expansion order *)
}

val manifest_to_string : manifest -> string
(** Canonical one-line JSON — the exact bytes {!run} persists, so two
    manifests compare equal iff their files are byte-identical. *)

val manifest_of_string : string -> (manifest, string) Stdlib.result

val load_manifest : dir:string -> (manifest, string) Stdlib.result
(** Read and decode [dir]'s manifest; [Error] when the campaign has not
    completed (no manifest yet) or the file does not parse. *)

(** {1 Regression gating} *)

type tolerances = {
  tol_makespan : float;
  tol_power : float;
  tol_max_temp : float;
  tol_avg_temp : float;
}

val zero_tolerance : tolerances

type finding = {
  g_cell : string;  (** {!cell_label} of the offending cell *)
  g_metric : string;
  g_base : float;
  g_cand : float;
  g_tol : float;
}

type gate_report = {
  compared : int;  (** baseline cells matched in the candidate *)
  clean : int;  (** matched cells with no metric above baseline *)
  drifted : finding list;  (** worse, but within tolerance *)
  regressed : finding list;  (** worse beyond tolerance *)
  missing : string list;  (** baseline cells absent from the candidate *)
  extra : string list;  (** candidate cells absent from the baseline *)
}

val gate : tol:tolerances -> baseline:manifest -> candidate:manifest -> gate_report
(** Match cells by content address; for each of the four metrics (all
    higher-is-worse), [cand - base > tol] is a regression and
    [0 < cand - base <= tol] tolerated drift. Extra candidate cells are
    informational only. *)

val gate_passes : gate_report -> bool
(** No regressions and no missing baseline cells. *)

(** {1 Summaries} *)

type summary = { campaign_name : string; cells : (cell * result) list }

val summarize : manifest -> summary
(** The manifest's cells in expansion order — what
    [Core.Report.campaign_summary] renders for [tats campaign report]. *)

val collect : spec -> summary
(** Run every cell sequentially in memory (no artifacts) — the golden
    demo path. Bit-identical results to {!run} + {!summarize}. *)
