(** TGFF-style random task-graph generation.

    The paper's benchmarks are characterized only by task count, edge count
    and deadline; this generator produces layered random DAGs matching those
    counts exactly, weakly connected, with seeded determinism. *)

type spec = {
  n_tasks : int;        (** >= 1 *)
  n_edges : int;        (** see {!feasible_edges} *)
  deadline : float;     (** > 0 *)
  n_task_types : int;   (** task types are drawn uniformly from [0, n) *)
  min_data : float;     (** edge data lower bound *)
  max_data : float;     (** edge data upper bound *)
}

val default_spec : spec
(** 20 tasks, 24 edges, deadline 1000, 8 task types, data in [8, 64]. *)

val feasible_edges : n_tasks:int -> int * int
(** [(lo, hi)] — the edge counts for which generation is guaranteed:
    connectivity needs at least [n_tasks - 1]; a DAG admits at most
    [n_tasks * (n_tasks - 1) / 2]. *)

val library_task_types : int
(** The task-type count shared by the paper's benchmark suite and the
    stock PE libraries ({!Benchmarks.n_task_types} re-exports it — the
    constant lives here because [Benchmarks] already depends on this
    module). *)

val scaled_spec : n_tasks:int -> spec
(** A feasible spec for large generated DAGs — the campaign runner's
    thousands-of-node axis. Edge count is [2 x n_tasks] clamped to
    {!feasible_edges} (TGFF-ish sparsity: average degree ~4 regardless of
    scale), the deadline grows linearly at 50 time units per task (the
    Bm1–Bm4 deadline-per-task band), and the task-type count is
    {!library_task_types} so every generated graph schedules against the
    stock platform/heterogeneous libraries. Raises [Invalid_argument]
    for [n_tasks < 1]. *)

val generate : seed:int -> name:string -> spec -> Graph.t
(** Layered construction: tasks are spread over layers, every non-first-layer
    task gets one incoming edge from an earlier layer (yielding a connected
    spanning structure), and the remaining edges are drawn uniformly among
    forward pairs. Raises [Invalid_argument] when [spec] is out of the
    feasible range. *)
