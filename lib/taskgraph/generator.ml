module Rng = Tats_util.Rng

type spec = {
  n_tasks : int;
  n_edges : int;
  deadline : float;
  n_task_types : int;
  min_data : float;
  max_data : float;
}

let default_spec =
  {
    n_tasks = 20;
    n_edges = 24;
    deadline = 1000.0;
    n_task_types = 8;
    min_data = 8.0;
    max_data = 64.0;
  }

let feasible_edges ~n_tasks =
  (Stdlib.max 0 (n_tasks - 1), n_tasks * (n_tasks - 1) / 2)

let library_task_types = 10

let scaled_spec ~n_tasks =
  if n_tasks < 1 then invalid_arg "Generator.scaled_spec: need at least one task";
  let lo, hi = feasible_edges ~n_tasks in
  let n_edges = Stdlib.min hi (Stdlib.max lo (2 * n_tasks)) in
  {
    default_spec with
    n_tasks;
    n_edges;
    deadline = 50.0 *. float_of_int n_tasks;
    n_task_types = library_task_types;
  }

(* Assign each task to a layer. The layer count scales with sqrt of the task
   count, which gives graphs with both parallelism and depth, like TGFF's
   series chains with fan-out. *)
let assign_layers rng n =
  let n_layers = Stdlib.max 2 (int_of_float (sqrt (float_of_int n) *. 1.5)) in
  let n_layers = Stdlib.min n_layers n in
  let layer_of = Array.make n 0 in
  (* Guarantee every layer is non-empty, then scatter the rest. *)
  for i = 0 to n_layers - 1 do
    layer_of.(i) <- i
  done;
  for i = n_layers to n - 1 do
    layer_of.(i) <- Rng.int rng n_layers
  done;
  Rng.shuffle rng layer_of;
  layer_of

let generate ~seed ~name spec =
  let { n_tasks; n_edges; deadline; n_task_types; min_data; max_data } = spec in
  if n_tasks < 1 then invalid_arg "Generator.generate: need at least one task";
  if n_task_types < 1 then invalid_arg "Generator.generate: need a task type";
  if min_data < 0.0 || max_data < min_data then
    invalid_arg "Generator.generate: bad data range";
  let lo, hi = feasible_edges ~n_tasks in
  if n_edges < lo || n_edges > hi then
    invalid_arg
      (Printf.sprintf "Generator.generate: %d edges outside feasible [%d, %d]"
         n_edges lo hi);
  let rng = Rng.create seed in
  let layer_of = assign_layers rng n_tasks in
  let b = Graph.builder ~name ~deadline in
  for _ = 1 to n_tasks do
    ignore (Graph.add_task b ~task_type:(Rng.int rng n_task_types) () : Task.id)
  done;
  let data () = Rng.uniform rng min_data max_data in
  (* Order task ids so that edges always point from a lower to a higher
     layer (ties broken by id), which keeps the graph acyclic. *)
  let order = Array.init n_tasks Fun.id in
  Array.sort
    (fun a b ->
      if layer_of.(a) <> layer_of.(b) then compare layer_of.(a) layer_of.(b)
      else compare a b)
    order;
  let pos = Array.make n_tasks 0 in
  Array.iteri (fun k v -> pos.(v) <- k) order;
  let edge_set = Hashtbl.create (2 * n_edges) in
  let have = ref 0 in
  let try_add u v =
    (* Normalize so the edge follows the global position order. *)
    let u, v = if pos.(u) < pos.(v) then (u, v) else (v, u) in
    if u <> v && not (Hashtbl.mem edge_set (u, v)) then begin
      Hashtbl.add edge_set (u, v) ();
      Graph.add_edge b ~data:(data ()) u v;
      incr have;
      true
    end
    else false
  in
  (* Spanning structure: each task after the first (in position order) links
     to a random earlier task, so the graph is weakly connected. *)
  for k = 1 to n_tasks - 1 do
    if !have < n_edges then begin
      let parent = order.(Rng.int rng k) in
      ignore (try_add parent order.(k) : bool)
    end
  done;
  (* Fill in the remaining edges uniformly among forward pairs. *)
  while !have < n_edges do
    let i = Rng.int rng n_tasks and j = Rng.int rng n_tasks in
    if i <> j then ignore (try_add i j : bool)
  done;
  Graph.build b
