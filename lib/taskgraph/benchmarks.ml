type descriptor = {
  bench_name : string;
  tasks : int;
  edges : int;
  deadline : float;
}

let descriptors =
  [|
    { bench_name = "Bm1"; tasks = 19; edges = 19; deadline = 790.0 };
    { bench_name = "Bm2"; tasks = 35; edges = 40; deadline = 1500.0 };
    { bench_name = "Bm3"; tasks = 39; edges = 43; deadline = 1650.0 };
    { bench_name = "Bm4"; tasks = 51; edges = 60; deadline = 2000.0 };
  |]

let n_task_types = Generator.library_task_types

(* Fixed seeds: the suite must be identical across runs and machines. *)
let seeds = [| 1101; 2203; 3307; 4409 |]

let load i =
  if i < 0 || i >= Array.length descriptors then
    invalid_arg "Benchmarks.load: index out of range";
  let d = descriptors.(i) in
  Generator.generate ~seed:seeds.(i) ~name:d.bench_name
    {
      Generator.n_tasks = d.tasks;
      n_edges = d.edges;
      deadline = d.deadline;
      n_task_types;
      min_data = 16.0;
      max_data = 128.0;
    }

let all () = Array.init (Array.length descriptors) load

let by_name name =
  let rec find i =
    if i >= Array.length descriptors then raise Not_found
    else if String.equal descriptors.(i).bench_name name then load i
    else find (i + 1)
  in
  find 0
